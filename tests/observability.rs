//! Observability guarantees (DESIGN.md §"Observability"):
//!
//! 1. Determinism — two identical seeded runs export byte-identical
//!    metrics snapshots and Chrome traces (the exports contain only
//!    virtual-clock values, never wall-clock or iteration order noise).
//! 2. Zero perturbation — enabling metrics + full tracing must not move
//!    the virtual clock by a single cycle; observability reads the
//!    simulation, it never participates in it.
//! 3. Zero cost when disabled — a disabled trace must not even evaluate
//!    the label/field closures.

use des::audit::{self, DecisionKind};
use des::trace::Category;
use proptest::prelude::*;
use vscc::CommScheme;
use vscc_apps::pingpong;

#[test]
fn exports_are_byte_identical_across_runs() {
    let run = || {
        let (_, trace, reg) = pingpong::interdevice_observed(CommScheme::LocalPutLocalGet, 6000, 2);
        (reg.snapshot().to_json(), des::obs::chrome_trace_json(&[("pingpong", &trace)]))
    };
    let (metrics_a, trace_a) = run();
    let (metrics_b, trace_b) = run();
    assert_eq!(metrics_a, metrics_b, "metrics snapshot must be deterministic");
    assert_eq!(trace_a, trace_b, "Chrome trace must be deterministic");
    // Sanity: the artifacts are non-trivial and carry every layer.
    assert!(trace_a.starts_with("{\"traceEvents\":["));
    assert!(trace_a.contains("\"cat\":\"protocol\""));
    assert!(trace_a.contains("\"cat\":\"vdma\""));
    assert!(metrics_a.contains("\"host.vdma_ops\""));
    assert!(metrics_a.contains("\"scc.d0.mpb.writes\""));
    assert!(metrics_a.contains("\"pcie.link0.egress.bytes\""));
}

#[test]
fn observability_does_not_perturb_virtual_time() {
    // Same workload with observability off (the default) and fully on:
    // the virtual completion time must match exactly.
    let plain = pingpong::interdevice(CommScheme::LocalPutLocalGet, 8192, 2);
    let (observed, trace, _) =
        pingpong::interdevice_observed(CommScheme::LocalPutLocalGet, 8192, 2);
    assert!(trace.is_enabled());
    assert!(!trace.events().is_empty(), "the observed run must actually record events");
    assert_eq!(plain, observed, "tracing/metrics must not shift the virtual clock");
}

#[test]
fn disabled_trace_never_evaluates_closures() {
    let t = des::trace::Trace::disabled();
    t.instant(
        0,
        Category::App,
        "never",
        || -> &'static str { panic!("actor closure must not run when tracing is disabled") },
        || panic!("fields closure must not run when tracing is disabled"),
    );
    t.begin(
        0,
        Category::Protocol,
        "never",
        || -> &'static str { panic!("actor closure must not run when tracing is disabled") },
        || panic!("fields closure must not run when tracing is disabled"),
    );
    t.end(0, Category::Protocol, "never", || -> &'static str {
        panic!("actor closure must not run when tracing is disabled")
    });
    assert!(t.events().is_empty());
}

#[test]
fn flow_ids_survive_the_chrome_export_and_pair_up() {
    let (_, trace, _) = pingpong::interdevice_observed(CommScheme::LocalPutLocalGet, 6000, 2);
    let flows: std::collections::BTreeSet<u64> =
        trace.events().iter().filter_map(|e| e.flow).collect();
    assert!(!flows.is_empty(), "provenance must stamp flow ids on the hops");
    let json = des::obs::chrome_trace_json(&[("pingpong", &trace)]);
    // The export opens exactly one arrow chain per multi-hop flow ("s")
    // and closes every one of them ("f").
    let count = |needle: &str| json.matches(needle).count();
    let starts = count("\"cat\":\"flow\",\"ph\":\"s\"");
    let finishes = count("\"cat\":\"flow\",\"ph\":\"f\"");
    assert!(starts > 0, "multi-hop messages must draw arrows");
    assert_eq!(starts, finishes, "every flow arrow must start and finish exactly once");
    for flow in &flows {
        assert!(json.contains(&format!("\"flow\":{flow}")), "flow {flow} lost in the export");
    }
}

#[test]
fn critpath_attribution_sums_to_measured_latency() {
    for scheme in [CommScheme::LocalPutRemoteGet, CommScheme::LocalPutLocalGet] {
        let (p, trace, _) = pingpong::interdevice_observed(scheme, 8192, 1);
        let attr = des::critpath::run_attribution(&trace, 0, p.cycles);
        assert_eq!(
            attr.total(),
            p.cycles,
            "{scheme:?}: phases must sum to the measured end-to-end time"
        );
        // Per-message timelines also account fully for their own windows.
        let timelines = des::critpath::flow_timelines(&trace);
        assert!(!timelines.is_empty(), "{scheme:?}: no flow timelines reconstructed");
        for t in &timelines {
            assert_eq!(t.attribution.total(), t.end - t.start, "flow {} leaks cycles", t.flow);
        }
    }
}

#[test]
fn clean_runs_record_no_monitor_violations() {
    let sim = des::Sim::new();
    let v = vscc::VsccBuilder::new(&sim, 2)
        .scheme(CommScheme::LocalPutLocalGet)
        .monitor_fail_fast(false)
        .build();
    let a = v.devices[0].global(scc::geometry::CoreId(0));
    let b = v.devices[1].global(scc::geometry::CoreId(0));
    let s = v.session_builder().participants(vec![a, b]).build();
    s.run_app(|r| async move {
        if r.id() == 0 {
            r.send(&[7u8; 6000], 1).await;
        } else {
            let mut buf = [0u8; 6000];
            r.recv(&mut buf, 0).await;
        }
    })
    .expect("clean run");
    assert!(v.monitors().is_some(), "monitors are on by default");
    assert!(v.violations().is_empty(), "a correct run must not trip any invariant");
}

#[test]
fn seeded_window_violation_is_caught_by_the_monitor() {
    // A stray put into the receive half of the payload area — the window
    // the inter-device schemes deliver into — must be caught by the
    // window-discipline monitor directly, not (much later and much more
    // obscurely) by an application's payload verification.
    let sim = des::Sim::new();
    let v = vscc::VsccBuilder::new(&sim, 2)
        .scheme(CommScheme::LocalPutLocalGet)
        .monitor_fail_fast(false)
        .build();
    let a = v.devices[0].global(scc::geometry::CoreId(0));
    let b = v.devices[1].global(scc::geometry::CoreId(0));
    let s = v.session_builder().participants(vec![a, b]).build();
    s.run_app(|r| async move {
        if r.id() == 0 {
            let who = r.who();
            let bad = rcce::layout::payload(who, vscc::schemes::SEND_AREA_BYTES);
            r.ctx().core.put(bad, &[0xEE; 64]).await;
        }
    })
    .expect("seeded run");
    let violations = v.violations();
    assert!(
        violations.iter().any(|viol| viol.check == "window_discipline"),
        "expected a window_discipline violation, got {violations:?}"
    );
}

#[test]
fn flight_recorder_is_bounded_and_deterministic() {
    let run = || {
        let sim = des::Sim::new();
        let v = vscc::VsccBuilder::new(&sim, 2)
            .scheme(CommScheme::LocalPutLocalGet)
            .trace(des::trace::Trace::with_categories_ring(&Category::ALL, 64))
            .build();
        let a = v.devices[0].global(scc::geometry::CoreId(0));
        let b = v.devices[1].global(scc::geometry::CoreId(0));
        let s = v.session_builder().participants(vec![a, b]).build();
        s.run_app(|r| async move {
            if r.id() == 0 {
                r.send(&[9u8; 16_000], 1).await;
            } else {
                let mut buf = vec![0u8; 16_000];
                r.recv(&mut buf, 0).await;
            }
        })
        .expect("recorded run");
        (v.trace().events().len(), v.trace().render())
    };
    let (len_a, dump_a) = run();
    let (_, dump_b) = run();
    assert!(len_a <= 64, "ring must keep at most its capacity ({len_a} kept)");
    assert_eq!(len_a, 64, "a 16 KB transfer records far more than 64 events");
    assert_eq!(dump_a, dump_b, "flight-recorder dumps must be byte-identical");
    assert!(dump_a.contains("evicted by the flight recorder"), "the dump must flag the eviction");
}

// ---- time-series plane (DESIGN.md §5f) ----

/// Drop the sampler's own `obs.*` footprint from a snapshot, leaving the
/// metrics the simulation itself produced.
fn non_obs(snap: des::obs::Snapshot) -> Vec<(String, des::obs::MetricValue)> {
    snap.entries.into_iter().filter(|(name, _)| !name.starts_with("obs.")).collect()
}

#[test]
fn timeseries_export_is_byte_identical_across_runs() {
    // The pool-occupancy gauge reads the thread-local chunk pool, whose
    // state persists across runs within a thread — byte-identity is
    // defined per fresh thread, which is how the benches run too.
    let run = || {
        std::thread::spawn(|| {
            let (_, trace, _, ts) = pingpong::interdevice_sampled(
                CommScheme::LocalPutLocalGet,
                8192,
                2,
                des::obs::DEFAULT_CADENCE,
            );
            (
                ts.to_json(),
                des::obs::chrome_trace_json_with_tracks(
                    &[("pingpong", &trace)],
                    &[("pingpong", &ts)],
                ),
            )
        })
        .join()
        .expect("run thread")
    };
    let (ts_a, trace_a) = run();
    let (ts_b, trace_b) = run();
    assert_eq!(ts_a, ts_b, "VSCC_TIMESERIES export must be deterministic");
    assert_eq!(trace_a, trace_b, "counter-track trace export must be deterministic");
    // Sanity: the acceptance-criteria tracks ride both exports.
    for name in [
        "pcie.link0.egress.busy_cycles",
        "vscc.window.vdma_send.bytes",
        "host.commtask.d0.busy_cycles",
        "bytes.pool.free_buffers",
    ] {
        assert!(ts_a.contains(name), "{name} missing from the time-series export");
        assert!(trace_a.contains(name), "{name} missing from the trace counter tracks");
    }
    assert!(trace_a.contains("\"ph\":\"C\""), "counter samples must use ph:\"C\"");
}

#[test]
fn sampler_does_not_perturb_the_run() {
    // Same workload bare, traced, and traced + sampled: the virtual
    // completion time and every non-`obs.*` metric must match exactly.
    let plain = pingpong::interdevice(CommScheme::LocalPutLocalGet, 8192, 2);
    let (observed, _, reg_observed) =
        pingpong::interdevice_observed(CommScheme::LocalPutLocalGet, 8192, 2);
    let (sampled, _, reg_sampled, ts) = pingpong::interdevice_sampled(
        CommScheme::LocalPutLocalGet,
        8192,
        2,
        des::obs::DEFAULT_CADENCE,
    );
    assert!(ts.samples() > 0, "the sampler must actually have fired");
    assert_eq!(plain, sampled, "the sampler daemon must not shift the virtual clock");
    assert_eq!(observed, sampled, "sampling on top of tracing must change nothing");
    assert_eq!(
        non_obs(reg_observed.snapshot()),
        non_obs(reg_sampled.snapshot()),
        "sampling must not move any non-obs metric"
    );
}

#[test]
fn windowed_quantiles_match_scalar_oracle() {
    let reg = des::obs::Registry::new();
    let h = reg.register_histogram("lat");
    let ts = des::obs::TimeSeries::manual(0, &reg, &des::obs::SamplerSpec::every(100));
    // Three windows with very different shapes; the middle one is empty,
    // so a leak across the reset would be unmissable.
    let windows: [&[u64]; 3] = [&[5, 9, 13, 200], &[], &[1000, 1001, 1002, 40_000]];
    let mut t = 0;
    for w in &windows {
        for &v in *w {
            h.record(v);
        }
        t += 100;
        ts.sample_now(t);
    }
    let series = ts.series();
    let s = series.iter().find(|s| s.name == "lat").expect("histogram series tracked");
    assert_eq!(s.points.len(), windows.len());
    for ((_, point), w) in s.points.iter().zip(&windows) {
        let des::obs::PointValue::Window { count, p50, p99 } = *point else {
            panic!("histogram series must sample Window points, got {point:?}")
        };
        assert_eq!(count, w.len() as u64, "window count must be the interval's recordings");
        // Oracle 1: a fresh histogram holding only this window's values
        // must give the exact same interpolated quantiles (proves the
        // delta-bucket reset discipline leaks nothing across windows).
        let oracle = des::stats::Log2Histogram::new();
        for &v in *w {
            oracle.record(v);
        }
        let expect =
            |q: f64| des::stats::log2_quantile_interpolated(&oracle.buckets(), count, u64::MAX, q);
        assert_eq!(p50, expect(0.5), "window {w:?}");
        assert_eq!(p99, expect(0.99), "window {w:?}");
        // Oracle 2: the log2 buckets bound each quantile within a factor
        // of two of the true scalar quantile.
        if !w.is_empty() {
            let mut sorted = w.to_vec();
            sorted.sort_unstable();
            let scalar = |q: f64| sorted[((w.len() as f64 * q).ceil() as usize).max(1) - 1];
            for (got, q) in [(p50, 0.5), (p99, 0.99)] {
                let want = scalar(q);
                assert!(
                    got / 2 <= want && got >= want / 2,
                    "q={q}: interpolated {got} vs scalar {want} in {w:?}"
                );
            }
        } else {
            assert_eq!((p50, p99), (0, 0), "an empty window has no quantiles");
        }
    }
}

#[test]
fn cadence_sweep_changes_only_the_sampling() {
    // Two very different cadences over the identical workload: the run's
    // outcome and every non-obs metric must be byte-identical — only the
    // number of samples may differ.
    let run =
        |cadence| pingpong::interdevice_sampled(CommScheme::LocalPutRemoteGet, 8192, 2, cadence);
    let (p_fast, _, reg_fast, ts_fast) = run(10_000);
    let (p_slow, _, reg_slow, ts_slow) = run(40_000);
    assert!(ts_fast.samples() > ts_slow.samples(), "a faster cadence takes more samples");
    assert_eq!(p_fast, p_slow, "the cadence must not shift the virtual clock");
    assert_eq!(
        non_obs(reg_fast.snapshot()),
        non_obs(reg_slow.snapshot()),
        "the cadence must not move any non-obs metric"
    );
}

// ---- audit plane (DESIGN.md §5g) ----

/// Fold `decisions` through a fresh audit stream and return the final
/// chain hash (the detection-power oracle: any change to the decision
/// sequence must move this value).
fn chain_of(decisions: &[(u64, DecisionKind, u64, u64)]) -> u64 {
    let a = audit::Audit::new(audit::DEFAULT_EPOCH_CYCLES);
    let guard = a.install();
    for &(cycle, kind, x, y) in decisions {
        audit::record_at(cycle, kind, x, y);
    }
    drop(guard);
    a.chain()
}

#[test]
fn audit_export_is_byte_identical_across_fresh_threads() {
    // The audit sink is thread-local; a fresh thread per run is exactly
    // how the benches and the golden render it.
    let run = || {
        std::thread::spawn(|| {
            let (_, audit) = pingpong::interdevice_audited(
                CommScheme::LocalPutLocalGet,
                8192,
                1,
                audit::DEFAULT_EPOCH_CYCLES,
                None,
                None,
            );
            audit.to_json()
        })
        .join()
        .expect("run thread")
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b, "VSCC_AUDIT export must be deterministic");
    assert!(a.contains("\"schema\": \"vscc-audit-v1\""));
    // The stream really covers the engine: scheduler, timers, payloads.
    for kind in ["spawn", "poll", "wake", "timer_arm", "timer_fire", "payload"] {
        assert!(a.contains(&format!("\"{kind}\":")), "no {kind} decisions audited");
    }
    assert_eq!(audit::diff_exports(&a, &b), Ok(None));
}

#[test]
fn audit_does_not_perturb_the_run() {
    // Same workload bare and audited: the virtual completion time must
    // match exactly — the audit stream reads decisions, it never makes
    // them.
    let plain = pingpong::interdevice(CommScheme::LocalPutLocalGet, 8192, 2);
    let (audited, audit) = pingpong::interdevice_audited(
        CommScheme::LocalPutLocalGet,
        8192,
        2,
        audit::DEFAULT_EPOCH_CYCLES,
        None,
        None,
    );
    assert!(audit.total_decisions() > 0, "the audited run must actually fold decisions");
    assert_eq!(plain, audited, "auditing must not shift the virtual clock");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64 })]

    /// Detection power: swapping two adjacent timer firings — the
    /// classic wheel-ordering bug — flips the epoch digest.
    #[test]
    fn audit_detects_a_timer_reorder(
        prefix in proptest::collection::vec(
            (0usize..audit::KIND_COUNT, 0u64..1 << 32, 0u64..1 << 32), 0..16),
        deadlines in proptest::collection::vec(1u64..1_000_000, 2..12),
        swap in 0usize..10,
    ) {
        let mut base: Vec<(u64, DecisionKind, u64, u64)> = prefix
            .iter()
            .map(|&(k, a, b)| (0, DecisionKind::ALL[k], a, b))
            .collect();
        let fires = prefix.len();
        // Timer pops carry (deadline, wheel seq): every pop is distinct.
        base.extend(
            deadlines.iter().enumerate().map(|(seq, &d)| {
                (0, DecisionKind::TimerFire, d, seq as u64)
            }),
        );
        let i = fires + swap % (deadlines.len() - 1);
        let mut reordered = base.clone();
        reordered.swap(i, i + 1);
        prop_assert!(
            chain_of(&base) != chain_of(&reordered),
            "swapping timer pops {} and {} must change the digest", i, i + 1
        );
    }

    /// Detection power: one extra (spurious) wake-up changes the digest.
    #[test]
    fn audit_detects_an_extra_wake(
        base in proptest::collection::vec(
            (0usize..audit::KIND_COUNT, 0u64..1 << 32, 0u64..1 << 32), 1..24),
        at in 0usize..24,
        task in 0u64..64,
    ) {
        let decisions: Vec<(u64, DecisionKind, u64, u64)> = base
            .iter()
            .map(|&(k, a, b)| (0, DecisionKind::ALL[k], a, b))
            .collect();
        let mut with_extra = decisions.clone();
        with_extra.insert(at % (decisions.len() + 1), (0, DecisionKind::Wake, task, 0));
        prop_assert!(
            chain_of(&decisions) != chain_of(&with_extra),
            "an injected wake must change the digest"
        );
    }

    /// Detection power: flipping a single payload byte at a tunnel
    /// boundary changes the epoch digest (the payload digest rides the
    /// chain, so data corruption is as visible as scheduling drift).
    #[test]
    fn audit_detects_a_flipped_payload_byte(
        bytes in proptest::collection::vec(any::<u8>(), 1..512),
        flip in 0usize..512,
        bit in 0u8..8,
    ) {
        let digest = |payload: &[u8]| {
            let a = audit::Audit::new(audit::DEFAULT_EPOCH_CYCLES);
            let guard = a.install();
            audit::record_payload(0, payload);
            drop(guard);
            a.chain()
        };
        let mut flipped = bytes.clone();
        let i = flip % bytes.len();
        flipped[i] ^= 1 << bit;
        prop_assert!(
            digest(&bytes) != digest(&flipped),
            "flipping byte {} must change the digest", i
        );
    }
}

/// The acceptance scenario: two runs differing ONLY in the fault-plan
/// seed, bisected in two passes — plain exports name the first divergent
/// epoch, zoomed reruns name the exact first divergent decision.
#[test]
fn seeded_divergence_is_bisected_to_the_first_decision() {
    let run = |seed: u64, zoom: Option<u64>| {
        std::thread::spawn(move || {
            let spec = des::faultplan::FaultSpec::parse(&format!(
                "seed={seed},corrupt=0.2,recovery=on,watchdog=20000000"
            ))
            .expect("valid fault spec");
            let (_, audit) = pingpong::interdevice_audited(
                CommScheme::LocalPutLocalGet,
                8192,
                1,
                audit::DEFAULT_EPOCH_CYCLES,
                zoom,
                Some(spec),
            );
            audit.to_json()
        })
        .join()
        .expect("run thread")
    };

    // Pass 1: plain exports -> first divergent epoch.
    let (a, b) = (run(1, None), run(2, None));
    let divergence = audit::diff_exports(&a, &b).expect("comparable exports");
    let Some(audit::Divergence::Epoch { epoch, a: ca, b: cb }) = divergence else {
        panic!("two seeds must diverge at epoch granularity, got {divergence:?}")
    };
    assert!(ca.is_some() && cb.is_some(), "both sides fold decisions in the divergent epoch");

    // Pass 2: re-run both zoomed on that epoch -> first divergent decision.
    let (az, bz) = (run(1, Some(epoch)), run(2, Some(epoch)));
    assert!(az.contains("\"zoom_dropped\": 0"), "the zoom ring must hold the whole epoch");
    assert!(bz.contains("\"zoom_dropped\": 0"), "the zoom ring must hold the whole epoch");
    let divergence = audit::diff_exports(&az, &bz).expect("comparable zoomed exports");
    let Some(audit::Divergence::Decision { index, a: da, b: db }) = divergence else {
        panic!("zoomed exports must diverge at decision granularity, got {divergence:?}")
    };
    let (da, db) = (da.expect("side A decision"), db.expect("side B decision"));
    // The runs differ only in the fault RNG seed, so the exact first
    // divergent decision is the first fault-plan RNG draw: same kind,
    // same virtual cycle, different drawn word.
    assert_eq!(da.kind, "rng_draw", "decision #{index}: {da}");
    assert_eq!(db.kind, "rng_draw", "decision #{index}: {db}");
    assert_eq!(da.cycle, db.cycle, "the diverging draw happens at the same virtual time");
    assert_ne!(da.a, db.a, "the drawn words must differ between seeds");
    // And the decision really sits inside the named epoch.
    let cadence = audit::DEFAULT_EPOCH_CYCLES;
    assert!(da.cycle >= epoch * cadence && da.cycle < (epoch + 1) * cadence);
}

#[test]
fn category_filter_is_selective() {
    // A Protocol-only trace over the same run records protocol spans but
    // drops host-layer Vdma/Pcie events.
    let sim = des::Sim::new();
    let v = vscc::VsccBuilder::new(&sim, 2)
        .scheme(CommScheme::LocalPutLocalGet)
        .trace_categories(&[Category::Protocol])
        .build();
    let a = v.devices[0].global(scc::geometry::CoreId(0));
    let b = v.devices[1].global(scc::geometry::CoreId(0));
    let s = v.session_builder().participants(vec![a, b]).build();
    s.run_app(|r| async move {
        if r.id() == 0 {
            r.send(&[7u8; 6000], 1).await;
        } else {
            let mut buf = [0u8; 6000];
            r.recv(&mut buf, 0).await;
        }
    })
    .expect("traced run");
    let events = v.trace().events();
    assert!(events.iter().any(|e| e.cat == Category::Protocol));
    assert!(events.iter().all(|e| e.cat == Category::Protocol));
}

#[test]
fn health_transitions_ride_trace_metrics_and_timeseries() {
    // The healing scenario from `tests/chaos.rs`, observed end to end:
    // an ack-loss storm demotes the (0,1) pair, the storm ends, canary
    // probes re-promote it. Every layer of the observability plane must
    // carry the arc — Health-category trace instants, `host.health.*`
    // metrics, and the health gauges as time-series level tracks.
    let spec = des::faultplan::FaultSpec::parse(
        "seed=13,ackloss=0.8@..800000,recovery=on,watchdog=20000000",
    )
    .expect("healing spec");
    let sim = des::Sim::new();
    let reg = des::obs::Registry::new();
    let rc = vscc::host::RecoveryConfig {
        probe_interval: 20_000,
        probe_backoff_max: 160_000,
        ..Default::default()
    };
    let v = vscc::VsccBuilder::new(&sim, 2)
        .scheme(CommScheme::RemotePutHwAck)
        .metrics_registry(&reg)
        .trace_categories(&Category::ALL)
        .recovery_config(rc)
        .faults(spec)
        .build();
    let a = v.devices[0].global(scc::geometry::CoreId(0));
    let b = v.devices[1].global(scc::geometry::CoreId(0));
    let s = v.session_builder().participants(vec![a, b]).build();
    let ts = v.spawn_sampler(&des::obs::SamplerSpec::every(des::obs::DEFAULT_CADENCE));
    let keepalive = sim.clone();
    sim.spawn_named("post-storm-idle", async move {
        keepalive.delay(3_000_000).await;
    });
    s.run_app(|r| async move {
        for i in 0..16u32 {
            let fill = (i as u8).wrapping_mul(29).wrapping_add(3);
            if r.id() == 0 {
                r.send(&vec![fill; 512], 1).await;
            } else {
                let mut buf = vec![0u8; 512];
                r.recv(&mut buf, 0).await;
            }
        }
    })
    .expect("healing run");
    ts.finish(sim.now());
    assert!(v.host.rstats.demotions.get() >= 1 && v.host.health.promotions.get() >= 1);

    // Trace: the arc's transitions land in the Health category and
    // survive the Chrome export with their pair operands.
    let health: Vec<_> = v.trace().events_in(Category::Health);
    assert!(!health.is_empty(), "health transitions must be traced");
    let names: std::collections::BTreeSet<&str> = health.iter().map(|e| e.kind).collect();
    for needed in ["demote", "probe_start", "promote"] {
        assert!(names.contains(needed), "missing {needed} in {names:?}");
    }
    let json = des::obs::chrome_trace_json(&[("healing", v.trace())]);
    assert!(json.contains("\"cat\":\"health\""), "Health events must survive the export");

    // Metrics: the health plane reports under `host.health.*`.
    let metrics = reg.snapshot().to_json();
    for name in ["host.health.promotions", "host.health.probe_sent", "host.health.degraded_pairs"] {
        assert!(metrics.contains(&format!("\"{name}\"")), "{name} missing from metrics");
    }

    // Time series: the degraded-pairs gauge rides the export as a level
    // track (it rose to 1 during the storm and fell back to 0).
    let ts_json = ts.to_json();
    assert!(
        ts_json.contains("host.health.degraded_pairs"),
        "health gauges must become time-series tracks"
    );
}
