//! Calibration-band assertions (DESIGN.md §5): the throughput *shapes*
//! the reproduction must preserve. These are the repository's contract
//! with the paper — any cost-model change that breaks a band fails here.

use vscc::CommScheme;
use vscc_apps::pingpong;

const REPS: usize = 3;
const BIG: usize = 128 * 1024;

#[test]
fn onchip_ceiling_near_150_mbps() {
    let p = pingpong::onchip(true, 512 * 1024, REPS);
    assert!(
        (120.0..190.0).contains(&p.mbps),
        "iRCCE on-chip ceiling {:.1} MB/s outside the paper's ~150 MB/s band",
        p.mbps
    );
}

#[test]
fn blocking_rcce_roughly_half_of_pipelined() {
    let block = pingpong::onchip(false, BIG, REPS).mbps;
    let pipe = pingpong::onchip(true, BIG, REPS).mbps;
    let ratio = block / pipe;
    assert!((0.4..0.75).contains(&ratio), "RCCE/iRCCE ratio {ratio:.2} implausible");
}

#[test]
fn simple_routing_collapses() {
    let p = pingpong::interdevice(CommScheme::SimpleRouting, 8192, 2);
    assert!(p.mbps < 3.0, "routing at {:.2} MB/s; a 32 B line per ~10^4 cycles is ~1.6", p.mbps);
}

#[test]
fn scheme_ordering_matches_figure_6b() {
    let t = |s: CommScheme| pingpong::interdevice(s, BIG, REPS).mbps;
    let routed = t(CommScheme::SimpleRouting);
    let bound = t(CommScheme::RemotePutHwAck);
    let wcb = t(CommScheme::RemotePutWcb);
    let lprg = t(CommScheme::LocalPutRemoteGet);
    let vdma = t(CommScheme::LocalPutLocalGet);
    assert!(
        routed < lprg && lprg < wcb && wcb < bound,
        "ordering broken: {routed} {lprg} {wcb} {bound}"
    );
    assert!(vdma <= bound && vdma > wcb, "vDMA ({vdma}) must sit just below the bound ({bound})");
}

#[test]
fn lprg_fraction_of_bound_near_72_percent() {
    let bound = pingpong::interdevice(CommScheme::RemotePutHwAck, BIG, REPS).mbps;
    let lprg = pingpong::interdevice(CommScheme::LocalPutRemoteGet, BIG, REPS).mbps;
    let frac = lprg / bound;
    assert!((0.55..0.85).contains(&frac), "LPRG/bound {frac:.3}; paper reports 0.7172");
}

#[test]
fn headline_recovered_fraction() {
    let onchip = pingpong::onchip(true, 256 * 1024, REPS).mbps;
    let best = pingpong::interdevice(CommScheme::LocalPutLocalGet, 256 * 1024, REPS).mbps;
    let frac = best / onchip;
    assert!((0.17..0.32).contains(&frac), "recovered fraction {frac:.3}; paper reports 0.24");
}

#[test]
fn latency_factor_of_120() {
    // Paper §5: the tunnel raises latencies by a factor of ~120.
    let m = pcie::PcieModel::default();
    let onchip = scc::CostModel::default().onchip_reference_latency();
    let factor = m.routed_line_round_trip() as f64 / onchip as f64;
    assert!((80.0..160.0).contains(&factor), "latency factor {factor:.0}, paper says ~120");
}

#[test]
fn dip_at_mpb_boundary_except_vdma() {
    let dip = |s: CommScheme| {
        pingpong::interdevice(s, 8192, REPS).mbps / pingpong::interdevice(s, 7424, REPS).mbps
    };
    assert!(dip(CommScheme::LocalPutRemoteGet) < 0.99, "LPRG must dip past the MPB boundary");
    assert!(dip(CommScheme::SimpleRouting) <= 1.0 + 1e-9);
    assert!(dip(CommScheme::LocalPutLocalGet) > 0.99, "vDMA pipelining removes the dip");
}

#[test]
fn onchip_dip_at_8k_for_blocking_rcce() {
    // Footnote 5: an 8 KiB message no longer fits the MPB payload.
    let before = pingpong::onchip(false, 7680, REPS).mbps;
    let after = pingpong::onchip(false, 8192, REPS).mbps;
    assert!(after < before, "on-chip blocking must dip when the message splits");
}

#[test]
fn zero_fault_spec_perturbs_nothing() {
    // The fault plane's zero-perturbation guarantee: a default build and a
    // build with an explicit all-zero `FaultSpec` (recovery armed but no
    // fault injected) must produce bit-identical runs — same virtual
    // clock, same metrics snapshot. Every probability draw in the plane
    // is gated on `p > 0.0`, so an inactive spec must never advance an
    // RNG stream or add a timer.
    let run = |faults: Option<des::faultplan::FaultSpec>| {
        let sim = des::Sim::new();
        let reg = des::obs::Registry::new();
        let mut b = vscc::VsccBuilder::new(&sim, 2)
            .scheme(CommScheme::LocalPutLocalGet)
            .metrics_registry(&reg);
        if let Some(spec) = faults {
            b = b.faults(spec);
        }
        let v = b.build();
        let a = v.devices[0].global(scc::geometry::CoreId(0));
        let c = v.devices[1].global(scc::geometry::CoreId(0));
        let s = v.session_builder().participants(vec![a, c]).build();
        s.run_app(|r| async move {
            if r.id() == 0 {
                r.send(&vec![5u8; 12_000], 1).await;
            } else {
                let mut buf = vec![0u8; 12_000];
                r.recv(&mut buf, 0).await;
                assert_eq!(buf, vec![5u8; 12_000]);
            }
        })
        .expect("calibration run");
        (sim.now(), reg.snapshot().to_json())
    };
    let (clean_now, clean_metrics) = run(None);
    let mut inert = des::faultplan::FaultSpec::none();
    inert.recovery = true; // recovery alone must not shift anything either
    let (spec_now, spec_metrics) = run(Some(inert));
    assert_eq!(clean_now, spec_now, "an inactive fault spec must not move the clock");
    assert_eq!(
        clean_metrics, spec_metrics,
        "an inactive fault spec must not change a single counter"
    );
}
