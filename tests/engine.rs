//! Engine-level regression tests: golden determinism of a fig6b-shaped
//! run, timer-wheel ordering/cancellation properties against a reference
//! heap, and the poll-watchdog clock-accounting fix.

use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;

use proptest::prelude::*;

use des::wheel::TimerWheel;
use des::Sim;
use vscc::{CommScheme, VsccBuilder};
use vscc_apps::pingpong;

// ---------------------------------------------------------------------
// Golden determinism
// ---------------------------------------------------------------------

/// FNV-1a 64-bit — enough to pin a byte stream without a hash dep.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn fig6b_shaped_run() -> (String, String) {
    let (_, trace, reg) = pingpong::interdevice_observed(CommScheme::LocalPutLocalGet, 65_536, 2);
    (des::obs::chrome_trace_json(&[("fig6b", &trace)]), reg.snapshot().to_json())
}

/// Two in-process runs of the same fixed-seed workload must export
/// byte-identical traces and metrics, and both must match the committed
/// golden hashes. A hash change here means a *model* change — rerun the
/// calibration suite and update the constants deliberately, never to
/// silence the test.
#[test]
fn golden_fig6b_shaped_run_is_byte_identical_and_pinned() {
    let (trace_a, metrics_a) = fig6b_shaped_run();
    let (trace_b, metrics_b) = fig6b_shaped_run();
    assert_eq!(trace_a, trace_b, "trace export must not vary between identical runs");
    assert_eq!(metrics_a, metrics_b, "metrics export must not vary between identical runs");

    const GOLDEN_TRACE_FNV: u64 = 0xfef8_4418_e1a5_4fe4;
    const GOLDEN_METRICS_FNV: u64 = 0x72d8_584d_a44c_fb1b;
    assert_eq!(
        fnv1a(trace_a.as_bytes()),
        GOLDEN_TRACE_FNV,
        "trace golden drifted (got {:#018x}) — model change? re-check calibration first",
        fnv1a(trace_a.as_bytes())
    );
    assert_eq!(
        fnv1a(metrics_a.as_bytes()),
        GOLDEN_METRICS_FNV,
        "metrics golden drifted (got {:#018x}) — model change? re-check calibration first",
        fnv1a(metrics_a.as_bytes())
    );
}

// ---------------------------------------------------------------------
// Timer wheel vs reference heap
// ---------------------------------------------------------------------

/// Interpreted wheel operation; values are reduced modulo the legal
/// range at execution time.
fn run_ops(ops: &[(u8, u64, u64)]) {
    let mut wheel: TimerWheel<u32> = TimerWheel::new();
    // Reference: straightforward min-heap of (deadline, seq) plus a
    // cancelled set, exactly the pre-wheel executor structure.
    let mut heap: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();
    let mut cancelled: Vec<bool> = Vec::new();
    let mut ids = Vec::new();
    let mut now = 0u64;
    let mut seq = 0u64;
    let mut payload = 0u32;

    let pop_reference = |heap: &mut BinaryHeap<Reverse<(u64, u64, u32)>>,
                         cancelled: &[bool]|
     -> Option<(u64, u32)> {
        while let Some(Reverse((d, _, p))) = heap.pop() {
            if !cancelled[p as usize] {
                return Some((d, p));
            }
        }
        None
    };

    for &(op, a, b) in ops {
        match op % 3 {
            0 => {
                // Insert: offsets span level 0, upper levels, and the
                // overflow heap (beyond the 2^24-cycle wheel span).
                let deadline = now + a % 40_000_000;
                let id = wheel.insert(deadline, payload);
                heap.push(Reverse((deadline, seq, payload)));
                ids.push(id);
                cancelled.push(false);
                seq += 1;
                payload += 1;
            }
            1 => {
                // Cancel a previously inserted timer (maybe already
                // fired or already cancelled — both must return false).
                if !ids.is_empty() {
                    let pick = (b % ids.len() as u64) as usize;
                    let wheel_ok = wheel.cancel(ids[pick]);
                    // The reference heap holds exactly the live entries
                    // (cancels retain them out, pops remove them), so a
                    // cancel must succeed iff the entry is still there.
                    let ref_live = heap.iter().any(|Reverse((_, _, p))| *p as usize == pick);
                    assert_eq!(wheel_ok, ref_live, "cancel([{pick}]) disagreed with the reference");
                    if wheel_ok {
                        cancelled[pick] = true;
                        heap.retain(|Reverse((_, _, p))| *p as usize != pick);
                    }
                }
            }
            _ => {
                let got = wheel.pop_next();
                let want = pop_reference(&mut heap, &cancelled);
                assert_eq!(got, want, "pop_next ordering diverged");
                if let Some((d, _)) = got {
                    now = now.max(d);
                }
            }
        }
        assert_eq!(wheel.len(), heap.len(), "live-entry counts diverged");
    }

    // Drain both: every remaining live timer must fire in (deadline,
    // seq) order.
    loop {
        let got = wheel.pop_next();
        let want = pop_reference(&mut heap, &cancelled);
        assert_eq!(got, want, "drain ordering diverged");
        if got.is_none() {
            break;
        }
    }
    assert!(wheel.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256 })]

    /// Any interleaving of inserts, cancels, and pops produces exactly
    /// the (deadline, seq)-FIFO order of the reference heap.
    #[test]
    fn wheel_matches_reference_heap(
        ops in prop::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 0..120),
    ) {
        run_ops(&ops);
    }

    /// Dense same-deadline bursts (the executor's common case: many
    /// tasks waking on one cycle) keep strict FIFO by sequence.
    #[test]
    fn wheel_same_deadline_bursts_stay_fifo(
        deadlines in prop::collection::vec(0u64..8, 1..80),
    ) {
        let mut wheel: TimerWheel<u32> = TimerWheel::new();
        for (i, d) in deadlines.iter().enumerate() {
            wheel.insert(*d, i as u32);
        }
        let mut fired: Vec<(u64, u32)> = Vec::new();
        while let Some(x) = wheel.pop_next() {
            fired.push(x);
        }
        let mut want: Vec<(u64, u32)> =
            deadlines.iter().enumerate().map(|(i, d)| (*d, i as u32)).collect();
        want.sort_by_key(|&(d, i)| (d, i));
        prop_assert_eq!(fired, want);
    }
}

/// A cancelled timer never fires, frees its slot, and a stale handle
/// (same index, older generation) can't cancel the slot's new tenant.
#[test]
fn wheel_cancellation_is_exact() {
    let mut wheel: TimerWheel<u32> = TimerWheel::new();
    let a = wheel.insert(10, 0);
    let b = wheel.insert(10, 1);
    assert!(wheel.cancel(a), "live timer must cancel");
    assert!(!wheel.cancel(a), "double-cancel must refuse");
    // The tombstoned slot is reclaimed lazily; whether or not the next
    // insert reuses it, the old handle must stay dead.
    let c = wheel.insert(20, 2);
    assert!(!wheel.cancel(a), "stale handle must stay dead after slot reclamation");
    assert_eq!(wheel.pop_next(), Some((10, 1)));
    assert_eq!(wheel.pop_next(), Some((20, 2)));
    assert_eq!(wheel.pop_next(), None);
    assert!(!wheel.cancel(b), "fired timer must refuse cancellation");
    assert!(!wheel.cancel(c), "fired timer must refuse cancellation");
}

// ---------------------------------------------------------------------
// Poll-watchdog clock accounting
// ---------------------------------------------------------------------

/// With cancellable timers, a clean watchdog'd run no longer leaves the
/// losing watchdog race arm in the timer structure: the final
/// `sim.now()` equals the last in-app `r.now()` and no timers remain.
/// (Pre-wheel, the stale watchdog deadline dragged `sim.now()` forward,
/// hence the old "measure completion from in-app r.now()" caveat.)
#[test]
fn clean_watchdogged_run_leaves_clock_at_app_completion() {
    let sim = Sim::new();
    let v = VsccBuilder::new(&sim, 2)
        .scheme(CommScheme::LocalPutLocalGet)
        .poll_watchdog(50_000_000) // generous: must never trip
        .build();
    let a = v.devices[0].global(scc::geometry::CoreId(0));
    let b = v.devices[1].global(scc::geometry::CoreId(0));
    let s = v.session_builder().participants(vec![a, b]).build();

    let app_end = Rc::new(Cell::new(0u64));
    let app_end2 = app_end.clone();
    s.run_app(move |r| {
        let app_end = app_end2.clone();
        async move {
            if r.id() == 0 {
                r.send(&vec![7u8; 4096], 1).await;
                let mut buf = vec![0u8; 4096];
                r.recv(&mut buf, 1).await;
            } else {
                let mut buf = vec![0u8; 4096];
                r.recv(&mut buf, 0).await;
                r.send(&buf, 0).await;
            }
            app_end.set(app_end.get().max(r.now()));
        }
    })
    .expect("watchdog must not trip on a healthy run");

    assert!(app_end.get() > 0, "the app must have recorded its completion time");
    assert_eq!(
        sim.now(),
        app_end.get(),
        "final sim.now() must equal the last in-app r.now(): no stale watchdog timers"
    );
    assert_eq!(sim.pending_timers(), 0, "watchdog race losers must be withdrawn");
}
