//! Integration tests for the sharded simulation engine (DESIGN.md §5i):
//! a multi-device `ShardPlan` with PCIe-derived lookahead must be
//! deterministic at every worker count, and a `VsccBuilder::shards`
//! system (one coupled execution group, epoch-sliced at the tunnel
//! lookahead) must land on exactly the serial engine's virtual clock
//! and audit chain.

use std::sync::Arc;

use des::shard::{merge_chains, ShardPlan, Tlp};
use des::Sim;
use scc::geometry::CoreId;
use vscc::{CommScheme, VsccBuilder};

/// A ring of `devices` shards, each bouncing an on-chip RCCE ping-pong
/// locally while forwarding a TLP token around the ring at the
/// PCIe-derived lookahead. Mirrors the `engine_micro` scaling workload
/// at test-sized proportions.
fn ring_plan(devices: usize) -> ShardPlan<u64> {
    const LAPS: u64 = 4;
    let lookahead = pcie::PcieModel::default().shard_lookahead();
    let mut plan: ShardPlan<u64> = ShardPlan::new(lookahead);
    for d in 0..devices {
        let n = devices;
        plan.shard(&format!("dev{d}"), move |sim, ctx| {
            let dev = scc::device::SccDevice::new(sim, scc::geometry::DeviceId(0));
            let sess = rcce::SessionBuilder::new(sim, vec![dev]).max_ranks(2).build();
            let _handles = sess.spawn_ranks(|r| async move {
                let peer = 1 - r.id();
                let msg = vec![0xC3u8; 512];
                let mut buf = vec![0u8; 512];
                for _ in 0..4 {
                    if r.id() == 0 {
                        r.send(&msg, peer).await;
                        r.recv(&mut buf, peer).await;
                    } else {
                        r.recv(&mut buf, peer).await;
                        r.send(&msg, peer).await;
                    }
                }
                assert_eq!(buf, vec![0xC3u8; 512]);
            });
            let tx = ctx.tx(d);
            let rx = ctx.rx((d + n - 1) % n);
            let token = move |kind: u32, tag: u64| Tlp {
                kind,
                src: d as u32,
                dst: ((d + 1) % n) as u32,
                tag,
                payload: Arc::from(&[0xEEu8; 16][..]),
            };
            let s = sim.clone();
            let hops = std::rc::Rc::new(std::cell::Cell::new(0u64));
            let hops_out = hops.clone();
            s.spawn(async move {
                if d == 0 {
                    tx.send(token(0, LAPS * n as u64));
                }
                loop {
                    let t = rx.recv().await;
                    hops.set(hops.get() + 1);
                    match (t.kind, t.tag) {
                        (0, 0) => {
                            tx.send(token(1, n as u64 - 1));
                            break;
                        }
                        (0, ttl) => tx.send(token(0, ttl - 1)),
                        (_, 0) => break,
                        (_, k) => {
                            tx.send(token(1, k - 1));
                            break;
                        }
                    }
                }
            });
            move || hops_out.get()
        });
    }
    for d in 0..devices {
        plan.conduit(&format!("ring{d}"), d, (d + 1) % devices, lookahead);
    }
    plan.audit(des::audit::DEFAULT_EPOCH_CYCLES);
    plan
}

/// The sharded engine's determinism contract at the plan level: the
/// same four-device ring run on 1, 2, and 4 workers produces identical
/// outputs, clocks, engine statistics, epochs, and per-group audit
/// exports.
#[test]
fn ring_plan_is_identical_at_every_worker_count() {
    let baseline = ring_plan(4).run(1).expect("serial reference run");
    assert_eq!(baseline.outputs.len(), 4);
    // Every forwarder moved the token at least once.
    assert!(baseline.outputs.iter().all(|&h| h >= 1), "hops: {:?}", baseline.outputs);
    assert!(baseline.merged_chain.is_some(), "plan.audit() must yield a merged chain");
    for workers in [2usize, 4] {
        let run = ring_plan(4).run(workers).expect("sharded run");
        assert_eq!(run.workers, workers);
        assert_eq!(run.outputs, baseline.outputs, "workers={workers}: outputs diverged");
        assert_eq!(run.now, baseline.now, "workers={workers}: clock diverged");
        assert_eq!(run.epochs, baseline.epochs, "workers={workers}: epoch count diverged");
        assert_eq!(
            run.stats.events(),
            baseline.stats.events(),
            "workers={workers}: event count diverged"
        );
        for (a, b) in run.groups.iter().zip(baseline.groups.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.audit_json, b.audit_json, "group '{}': audit diverged", a.name);
        }
        assert_eq!(run.merged_chain, baseline.merged_chain, "workers={workers}: chain diverged");
        let chains: Vec<u64> =
            run.groups.iter().map(|g| g.audit_chain.expect("audited group")).collect();
        assert_eq!(Some(merge_chains(&chains)), run.merged_chain);
    }
}

/// One audited fig6b-style run; `shards` selects the engine through the
/// builder (not the environment).
fn audited_pingpong(shards: Option<u32>) -> (u64, u64, Option<u32>) {
    let audit = des::audit::Audit::new(des::audit::DEFAULT_EPOCH_CYCLES);
    let guard = audit.install();
    let sim = Sim::new();
    let mut b = VsccBuilder::new(&sim, 2).scheme(CommScheme::LocalPutLocalGet);
    if let Some(n) = shards {
        b = b.shards(n);
    }
    let v = b.build();
    let a = v.devices[0].global(CoreId(0));
    let d = v.devices[1].global(CoreId(0));
    let s = v.session_builder().participants(vec![a, d]).build();
    s.run_app(|r| async move {
        if r.id() == 0 {
            r.send(&vec![0x77u8; 4096], 1).await;
        } else {
            let mut buf = vec![0u8; 4096];
            r.recv(&mut buf, 0).await;
            assert_eq!(buf, vec![0x77u8; 4096]);
        }
    })
    .expect("pingpong completes");
    drop(guard);
    (sim.now(), audit.chain(), v.shards())
}

/// `VsccBuilder::shards` engages the epoch-sliced engine (the system is
/// one coupled group) without perturbing virtual time or the audited
/// decision stream — the byte-identity contract at the builder level.
#[test]
fn builder_shards_is_audit_identical_to_serial() {
    let (serial_now, serial_chain, serial_shards) = audited_pingpong(None);
    assert_eq!(serial_shards, None);
    for n in [1u32, 2, 4] {
        let (now, chain, shards) = audited_pingpong(Some(n));
        assert_eq!(shards, Some(n), "builder must record the shard count");
        assert_eq!(now, serial_now, "shards={n}: virtual clock diverged");
        assert_eq!(chain, serial_chain, "shards={n}: audit chain diverged");
    }
}

/// The builder's epoch slice really engages: a sharded build slices the
/// sim at the PCIe model's lookahead, a serial build leaves it off.
#[test]
fn builder_shards_sets_the_epoch_slice() {
    let sim = Sim::new();
    let _v = VsccBuilder::new(&sim, 2).shards(2).build();
    assert_eq!(sim.epoch_slice(), pcie::PcieModel::default().shard_lookahead());

    let sim2 = Sim::new();
    let _v2 = VsccBuilder::new(&sim2, 2).build();
    assert_eq!(sim2.epoch_slice(), 0, "serial build must not slice");
}
