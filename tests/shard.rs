//! Integration tests for the sharded simulation engine (DESIGN.md §5i):
//! a multi-device `ShardPlan` with PCIe-derived lookahead must be
//! deterministic at every worker count, the coupling-graph partitioner
//! must be deterministic and minimal over arbitrary mixed graphs, and a
//! `VsccBuilder::shards` system (latency-stamped MMIO boundary, one
//! execution group per device plus the host, epoch-sliced at the tunnel
//! lookahead) must land on exactly the serial engine's virtual clock
//! and audit chain.

use std::sync::Arc;

use des::shard::{merge_chains, partition_groups, CouplingEdge, ShardPlan, Tlp};
use des::Sim;
use proptest::prelude::*;
use scc::geometry::CoreId;
use vscc::{CommScheme, VsccBuilder};

/// A ring of `devices` shards, each bouncing an on-chip RCCE ping-pong
/// locally while forwarding a TLP token around the ring at the
/// PCIe-derived lookahead. Mirrors the `engine_micro` scaling workload
/// at test-sized proportions.
fn ring_plan(devices: usize) -> ShardPlan<u64> {
    const LAPS: u64 = 4;
    let lookahead = pcie::PcieModel::default().shard_lookahead();
    let mut plan: ShardPlan<u64> = ShardPlan::new(lookahead);
    for d in 0..devices {
        let n = devices;
        plan.shard(&format!("dev{d}"), move |sim, ctx| {
            let dev = scc::device::SccDevice::new(sim, scc::geometry::DeviceId(0));
            let sess = rcce::SessionBuilder::new(sim, vec![dev]).max_ranks(2).build();
            let _handles = sess.spawn_ranks(|r| async move {
                let peer = 1 - r.id();
                let msg = vec![0xC3u8; 512];
                let mut buf = vec![0u8; 512];
                for _ in 0..4 {
                    if r.id() == 0 {
                        r.send(&msg, peer).await;
                        r.recv(&mut buf, peer).await;
                    } else {
                        r.recv(&mut buf, peer).await;
                        r.send(&msg, peer).await;
                    }
                }
                assert_eq!(buf, vec![0xC3u8; 512]);
            });
            let tx = ctx.tx(d);
            let rx = ctx.rx((d + n - 1) % n);
            let token = move |kind: u32, tag: u64| Tlp {
                kind,
                src: d as u32,
                dst: ((d + 1) % n) as u32,
                tag,
                payload: Arc::from(&[0xEEu8; 16][..]),
            };
            let s = sim.clone();
            let hops = std::rc::Rc::new(std::cell::Cell::new(0u64));
            let hops_out = hops.clone();
            s.spawn(async move {
                if d == 0 {
                    tx.send(token(0, LAPS * n as u64));
                }
                loop {
                    let t = rx.recv().await;
                    hops.set(hops.get() + 1);
                    match (t.kind, t.tag) {
                        (0, 0) => {
                            tx.send(token(1, n as u64 - 1));
                            break;
                        }
                        (0, ttl) => tx.send(token(0, ttl - 1)),
                        (_, 0) => break,
                        (_, k) => {
                            tx.send(token(1, k - 1));
                            break;
                        }
                    }
                }
            });
            move || hops_out.get()
        });
    }
    for d in 0..devices {
        plan.conduit(&format!("ring{d}"), d, (d + 1) % devices, lookahead);
    }
    plan.audit(des::audit::DEFAULT_EPOCH_CYCLES);
    plan
}

/// The sharded engine's determinism contract at the plan level: the
/// same four-device ring run on 1, 2, and 4 workers produces identical
/// outputs, clocks, engine statistics, epochs, and per-group audit
/// exports.
#[test]
fn ring_plan_is_identical_at_every_worker_count() {
    let baseline = ring_plan(4).run(1).expect("serial reference run");
    assert_eq!(baseline.outputs.len(), 4);
    // Every forwarder moved the token at least once.
    assert!(baseline.outputs.iter().all(|&h| h >= 1), "hops: {:?}", baseline.outputs);
    assert!(baseline.merged_chain.is_some(), "plan.audit() must yield a merged chain");
    for workers in [2usize, 4] {
        let run = ring_plan(4).run(workers).expect("sharded run");
        assert_eq!(run.workers, workers);
        assert_eq!(run.outputs, baseline.outputs, "workers={workers}: outputs diverged");
        assert_eq!(run.now, baseline.now, "workers={workers}: clock diverged");
        assert_eq!(run.epochs, baseline.epochs, "workers={workers}: epoch count diverged");
        assert_eq!(
            run.stats.events(),
            baseline.stats.events(),
            "workers={workers}: event count diverged"
        );
        for (a, b) in run.groups.iter().zip(baseline.groups.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.audit_json, b.audit_json, "group '{}': audit diverged", a.name);
        }
        assert_eq!(run.merged_chain, baseline.merged_chain, "workers={workers}: chain diverged");
        let chains: Vec<u64> =
            run.groups.iter().map(|g| g.audit_chain.expect("audited group")).collect();
        assert_eq!(Some(merge_chains(&chains)), run.merged_chain);
    }
}

/// One audited fig6b-style run; `shards` selects the engine through the
/// builder (not the environment).
fn audited_pingpong(shards: Option<u32>) -> (u64, u64, Option<u32>) {
    let audit = des::audit::Audit::new(des::audit::DEFAULT_EPOCH_CYCLES);
    let guard = audit.install();
    let sim = Sim::new();
    let mut b = VsccBuilder::new(&sim, 2).scheme(CommScheme::LocalPutLocalGet);
    if let Some(n) = shards {
        b = b.shards(n);
    }
    let v = b.build();
    let a = v.devices[0].global(CoreId(0));
    let d = v.devices[1].global(CoreId(0));
    let s = v.session_builder().participants(vec![a, d]).build();
    s.run_app(|r| async move {
        if r.id() == 0 {
            r.send(&vec![0x77u8; 4096], 1).await;
        } else {
            let mut buf = vec![0u8; 4096];
            r.recv(&mut buf, 0).await;
            assert_eq!(buf, vec![0x77u8; 4096]);
        }
    })
    .expect("pingpong completes");
    drop(guard);
    (sim.now(), audit.chain(), v.shards())
}

/// `VsccBuilder::shards` engages the epoch-sliced engine (the system is
/// one coupled group) without perturbing virtual time or the audited
/// decision stream — the byte-identity contract at the builder level.
#[test]
fn builder_shards_is_audit_identical_to_serial() {
    let (serial_now, serial_chain, serial_shards) = audited_pingpong(None);
    assert_eq!(serial_shards, None);
    for n in [1u32, 2, 4] {
        let (now, chain, shards) = audited_pingpong(Some(n));
        assert_eq!(shards, Some(n), "builder must record the shard count");
        assert_eq!(now, serial_now, "shards={n}: virtual clock diverged");
        assert_eq!(chain, serial_chain, "shards={n}: audit chain diverged");
    }
}

/// The builder's epoch slice really engages: a sharded build slices the
/// sim at the PCIe model's lookahead, a serial build leaves it off.
#[test]
fn builder_shards_sets_the_epoch_slice() {
    let sim = Sim::new();
    let _v = VsccBuilder::new(&sim, 2).shards(2).build();
    assert_eq!(sim.epoch_slice(), pcie::PcieModel::default().shard_lookahead());

    let sim2 = Sim::new();
    let _v2 = VsccBuilder::new(&sim2, 2).build();
    assert_eq!(sim2.epoch_slice(), 0, "serial build must not slice");
}

/// The latency-stamped MMIO boundary makes the calibrated system
/// genuinely multi-group: a five-device build partitions into six
/// execution groups — the host alone plus one per device — because
/// every host↔device coupling is stamped at the MMIO crossing cost,
/// which equals the tunnel lookahead. The partition is computed for
/// serial builds too (it describes the coupling graph, not the engine
/// selection).
#[test]
fn five_device_system_partitions_into_six_groups() {
    for shards in [None, Some(5u32)] {
        let sim = Sim::new();
        let mut b = VsccBuilder::new(&sim, 5);
        if let Some(n) = shards {
            b = b.shards(n);
        }
        let v = b.build();
        let groups = v.shard_groups();
        assert_eq!(groups.len(), 6, "shards={shards:?}: groups {groups:?}");
        assert_eq!(groups[0], vec!["host".to_string()]);
        for (d, g) in groups[1..].iter().enumerate() {
            assert_eq!(g, &vec![format!("dev{d}")], "device {d} must be its own group");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 192 })]

    /// The partitioner over arbitrary coupling graphs mixing
    /// zero-latency couplings, sub-lookahead stamps, and at/above-
    /// lookahead stamps: deterministic (edge order is irrelevant),
    /// a true partition (every shard in exactly one sorted group,
    /// groups ordered by smallest member), and minimal (two shards
    /// share a group *iff* a path of merging edges connects them,
    /// checked against an independent BFS reference).
    #[test]
    fn partition_groups_is_deterministic_and_minimal_over_arbitrary_graphs(
        n in 1usize..9,
        raw in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u16>()), 0..40),
    ) {
        const LOOKAHEAD: u64 = 1000;
        let edges: Vec<CouplingEdge> = raw
            .iter()
            .map(|&(a, b, l)| {
                let lat = match l % 3 {
                    0 => None,                           // zero-latency: always merges
                    1 => Some(u64::from(l) % LOOKAHEAD), // sub-lookahead: merges
                    _ => Some(LOOKAHEAD + u64::from(l)), // at/above: boundary cut
                };
                (usize::from(a) % n, usize::from(b) % n, lat)
            })
            .collect();

        let groups = partition_groups(n, LOOKAHEAD, &edges);

        // Deterministic, and independent of edge order.
        prop_assert_eq!(&groups, &partition_groups(n, LOOKAHEAD, &edges));
        let mut rev = edges.clone();
        rev.reverse();
        prop_assert_eq!(&groups, &partition_groups(n, LOOKAHEAD, &rev));

        // A partition with the documented canonical shape.
        let mut seen = vec![false; n];
        let mut prev_head = None;
        for g in &groups {
            prop_assert!(!g.is_empty(), "empty group in {:?}", groups);
            prop_assert!(g.windows(2).all(|w| w[0] < w[1]), "unsorted group {:?}", g);
            if let Some(p) = prev_head {
                prop_assert!(g[0] > p, "groups out of order: {:?}", groups);
            }
            prev_head = Some(g[0]);
            for &s in g {
                prop_assert!(!seen[s], "shard {} appears in two groups", s);
                seen[s] = true;
            }
        }
        prop_assert!(seen.iter().all(|&x| x), "shard missing from {:?}", groups);

        // Minimal: group membership must match BFS connectivity over
        // exactly the merging edges.
        let mut adj = vec![Vec::new(); n];
        for &(a, b, lat) in &edges {
            if lat.is_none_or(|l| l < LOOKAHEAD) {
                adj[a].push(b);
                adj[b].push(a);
            }
        }
        let mut group_of = vec![0usize; n];
        for (gi, g) in groups.iter().enumerate() {
            for &s in g {
                group_of[s] = gi;
            }
        }
        for start in 0..n {
            let mut reach = vec![false; n];
            reach[start] = true;
            let mut stack = vec![start];
            while let Some(x) = stack.pop() {
                for &y in &adj[x] {
                    if !reach[y] {
                        reach[y] = true;
                        stack.push(y);
                    }
                }
            }
            for other in 0..n {
                prop_assert!(
                    (group_of[start] == group_of[other]) == reach[other],
                    "shards {} and {}: grouped={} reachable={}",
                    start,
                    other,
                    group_of[start] == group_of[other],
                    reach[other]
                );
            }
        }
    }
}
