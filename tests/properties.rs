//! Property-based tests over the core invariants, with `proptest`.
//!
//! The king property: *any* sequence of messages over *any* scheme is
//! delivered byte-exact and in order. The rest pin down the data
//! structures the protocols rely on (counter flags, chunking, the host
//! WCB reassembly, cache selectivity, the executor clock).

use proptest::prelude::*;

use des::faultplan::{FaultSpec, Phase};
use des::Sim;
use rcce::layout::counter_reached;
use rcce::protocol::chunk_ranges;
use vscc::{CommScheme, VsccBuilder};

/// Map a generated `(mode, start, len)` triple onto a valid phase bound:
/// unbounded, open-ended, or a proper `[start, start+len)` window.
fn phase_of(mode: u8, start: u64, len: u64) -> Phase {
    match mode % 3 {
        0 => Phase::ALWAYS,
        1 => Phase { start, end: None },
        _ => Phase { start, end: Some(start + len.max(1)) },
    }
}

/// Probabilities as exact binary fractions: `n / 1024` round-trips
/// through `Display` with no decimal noise (any f64 does — Rust prints
/// the shortest uniquely-parsing representation — but fractions keep the
/// generated specs readable in failure output).
fn prob_of(milli: u32) -> f64 {
    milli as f64 / 1024.0
}

fn scheme_strategy() -> impl Strategy<Value = CommScheme> {
    prop_oneof![
        Just(CommScheme::SimpleRouting),
        Just(CommScheme::RemotePutHwAck),
        Just(CommScheme::RemotePutWcb),
        Just(CommScheme::LocalPutRemoteGet),
        Just(CommScheme::LocalPutLocalGet),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    /// Messages of arbitrary sizes and contents cross the tunnel intact
    /// and in order, under every scheme.
    #[test]
    fn cross_device_stream_is_exact_and_ordered(
        scheme in scheme_strategy(),
        lens in prop::collection::vec(0usize..20_000, 1..5),
        seed in any::<u64>(),
    ) {
        let sim = Sim::new();
        let v = VsccBuilder::new(&sim, 2).scheme(scheme).build();
        let a = v.devices[0].global(scc::geometry::CoreId(0));
        let b = v.devices[1].global(scc::geometry::CoreId(0));
        let s = v.session_builder().participants(vec![a, b]).build();
        // Deterministic pseudo-random payloads.
        let msgs: Vec<Vec<u8>> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| {
                let mut rng = des::rng::DetRng::seed_from(seed ^ i as u64);
                let mut v = vec![0u8; len];
                rng.fill(&mut v);
                v
            })
            .collect();
        let expect = msgs.clone();
        s.run_app(move |r| {
            let msgs = msgs.clone();
            let expect = expect.clone();
            async move {
                if r.id() == 0 {
                    for m in &msgs {
                        r.send(m, 1).await;
                    }
                } else {
                    for e in &expect {
                        let got = r.recv_vec(e.len(), 0).await;
                        assert_eq!(&got, e, "stream corrupted under {:?}", scheme);
                    }
                }
            }
        })
        .unwrap();
    }

    /// Bidirectional random traffic between two cross-device ranks.
    #[test]
    fn cross_device_bidirectional(
        scheme in scheme_strategy(),
        len_a in 1usize..10_000,
        len_b in 1usize..10_000,
    ) {
        let sim = Sim::new();
        let v = VsccBuilder::new(&sim, 2).scheme(scheme).build();
        let a = v.devices[0].global(scc::geometry::CoreId(0));
        let b = v.devices[1].global(scc::geometry::CoreId(0));
        let s = v.session_builder().participants(vec![a, b]).build();
        s.run_app(move |r| async move {
            if r.id() == 0 {
                let req = r.isend(vec![0xA1; len_a], 1);
                let got = r.recv_vec(len_b, 1).await;
                req.wait().await;
                assert_eq!(got, vec![0xB2; len_b]);
            } else {
                let req = r.isend(vec![0xB2; len_b], 0);
                let got = r.recv_vec(len_a, 0).await;
                req.wait().await;
                assert_eq!(got, vec![0xA1; len_a]);
            }
        })
        .unwrap();
    }

    /// chunk_ranges tiles [0, len) exactly, in order, within the chunk cap.
    #[test]
    fn chunk_ranges_tile_exactly(len in 0usize..100_000, chunk in 1usize..9_000) {
        let ranges: Vec<_> = chunk_ranges(len, chunk).collect();
        prop_assert!(!ranges.is_empty());
        if len == 0 {
            prop_assert_eq!(ranges, vec![(0, 0)]);
        } else {
            prop_assert_eq!(ranges[0].0, 0);
            prop_assert_eq!(ranges.last().unwrap().1, len);
            for w in ranges.windows(2) {
                prop_assert_eq!(w[0].1, w[1].0);
            }
            for (lo, hi) in ranges {
                prop_assert!(hi > lo && hi - lo <= chunk);
            }
        }
    }

    /// Wrapping counter comparison is consistent with bounded distance:
    /// a counter at distance < 128 ahead of the target is "reached".
    #[test]
    fn counter_reached_window(target in any::<u8>(), ahead in 0u8..128) {
        let value = target.wrapping_add(ahead);
        prop_assert!(counter_reached(value, target));
        // And strictly behind (1..=128) is not reached.
        let behind = target.wrapping_sub(ahead).wrapping_sub(1);
        prop_assert!(!counter_reached(behind, target));
    }

    /// The host WCB reassembles any *linear* write stream exactly. (A
    /// sender emits its chunk bytes in address order; the WCB does not
    /// order overlapping runs, and the protocols never produce them —
    /// see `hostwcb` docs.)
    #[test]
    fn wcb_reassembles_any_pattern(
        granularity in 1usize..2_048,
        pieces in prop::collection::vec((0usize..400, 1usize..700), 1..12),
    ) {
        let wcb = vscc::hostwcb::HostWcb::new(granularity);
        let dst = scc::GlobalCore::new(1, 0);
        let mut shadow = vec![0u8; scc::MPB_BYTES];
        let mut touched = vec![false; scc::MPB_BYTES];
        let mut delivered: Vec<vscc::hostwcb::PendingRun> = Vec::new();
        let mut cursor = 0usize;
        for (i, (gap, len)) in pieces.iter().enumerate() {
            let off = (cursor + gap).min(scc::MPB_BYTES - len);
            cursor = off + len;
            let data = vec![(i % 251) as u8 + 1; *len];
            shadow[off..off + len].copy_from_slice(&data);
            touched[off..off + len].fill(true);
            delivered.extend(wcb.append(dst, off as u16, &data));
            if cursor >= scc::MPB_BYTES - 700 {
                break;
            }
        }
        delivered.extend(wcb.drain(dst));
        // Apply the flush stream in order; the result must equal the
        // shadow on every touched byte.
        let mut out = vec![0u8; scc::MPB_BYTES];
        for run in delivered {
            out[run.offset as usize..run.offset as usize + run.data.len()]
                .copy_from_slice(&run.data);
        }
        for i in 0..scc::MPB_BYTES {
            if touched[i] {
                prop_assert_eq!(out[i], shadow[i], "byte {} differs", i);
            }
        }
        prop_assert_eq!(wcb.buffered(dst), 0);
    }

    /// The software cache never serves bytes that were not installed, and
    /// serves installed ranges exactly.
    #[test]
    fn swcache_selectivity(
        installs in prop::collection::vec((0usize..7_000, 1usize..1_000), 0..6),
        probe_off in 0usize..7_500,
        probe_len in 1usize..600,
    ) {
        let cache = vscc::swcache::SwCache::new();
        let owner = scc::GlobalCore::new(0, 3);
        let mut valid = vec![false; scc::MPB_BYTES];
        let mut shadow = vec![0u8; scc::MPB_BYTES];
        for (i, (off, len)) in installs.iter().enumerate() {
            let off = (*off).min(scc::MPB_BYTES - *len);
            let data = vec![i as u8 + 1; *len];
            cache.begin_update(owner);
            cache.complete_update(owner, off as u16, &data);
            shadow[off..off + len].copy_from_slice(&data);
            valid[off..off + len].fill(true);
        }
        let probe_off = probe_off.min(scc::MPB_BYTES - probe_len);
        let hit = cache.read(owner, probe_off as u16, probe_len);
        let fully_valid = valid[probe_off..probe_off + probe_len].iter().all(|&v| v);
        prop_assert_eq!(hit.is_some(), fully_valid);
        if let Some(bytes) = hit {
            prop_assert_eq!(bytes, shadow[probe_off..probe_off + probe_len].to_vec());
        }
    }

    /// The simulated clock is monotone and delays compose additively for
    /// a single task.
    #[test]
    fn clock_is_monotone_and_additive(delays in prop::collection::vec(0u64..100_000, 1..20)) {
        let sim = Sim::new();
        let total: u64 = delays.iter().sum();
        let s = sim.clone();
        sim.spawn(async move {
            let mut last = 0;
            for d in delays {
                s.delay(d).await;
                prop_assert!(s.now() >= last);
                last = s.now();
            }
            Ok(())
        });
        sim.run().unwrap();
        prop_assert_eq!(sim.now(), total);
    }

    /// FIFO link: n contending transfers of equal size finish in arrival
    /// order, spaced by exactly the occupancy.
    #[test]
    fn link_fifo_spacing(n in 1usize..20, bytes in 1u64..5_000, lat in 0u64..2_000) {
        let sim = Sim::new();
        let link = des::link::Link::new(des::link::Bandwidth::cycles_per_byte(3, 2), lat, 7);
        let ends = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        for _ in 0..n {
            let (s, l, e) = (sim.clone(), link.clone(), ends.clone());
            sim.spawn(async move {
                l.transfer(&s, bytes).await;
                e.borrow_mut().push(s.now());
            });
        }
        sim.run().unwrap();
        let ends = ends.borrow();
        let occupy = (bytes * 3).div_ceil(2) + 7;
        for (i, &t) in ends.iter().enumerate() {
            prop_assert_eq!(t, occupy * (i as u64 + 1) + lat);
        }
    }

    /// `des::bytes::Bytes` against the `Vec<u8>` oracle: any chain of
    /// sub-slices sees exactly the bytes the equivalent `Vec` windows
    /// see, for arbitrary contents and slice arithmetic.
    #[test]
    fn bytes_slices_match_vec_oracle(
        data in prop::collection::vec(any::<u8>(), 0..4096),
        cuts in prop::collection::vec((0u32..10_000, 0u32..10_000), 0..6),
    ) {
        let mut oracle: Vec<u8> = data.clone();
        let mut b = des::bytes::Bytes::copy_from_slice(&data);
        prop_assert_eq!(&b, &oracle);
        for (a, z) in cuts {
            // Map the fraction pair onto a valid (start, end) window.
            let start = a as usize * b.len() / 10_000;
            let end = start + (z as usize * (b.len() - start) / 10_000);
            b = b.slice(start..end);
            oracle = oracle[start..end].to_vec();
            prop_assert_eq!(b.len(), oracle.len());
            prop_assert_eq!(&b, &oracle);
        }
    }

    /// CoW isolation: mutating one view through `make_mut` never
    /// disturbs any other view of the same storage, and the mutated view
    /// matches the oracle mutation.
    #[test]
    fn bytes_make_mut_isolates_views(
        data in prop::collection::vec(any::<u8>(), 1..2048),
        flips in prop::collection::vec((0u32..10_000, any::<u8>()), 1..8),
    ) {
        let base = des::bytes::Bytes::copy_from_slice(&data);
        let snapshot = base.to_vec();
        let mut view = base.clone();
        let mut oracle = data.clone();
        for (pos, val) in flips {
            let i = (pos as usize * view.len() / 10_000).min(view.len() - 1);
            view.make_mut()[i] ^= val;
            oracle[i] ^= val;
        }
        prop_assert_eq!(&view, &oracle, "mutated view tracks the oracle");
        prop_assert_eq!(&base, &snapshot, "sibling view never observes the mutation");
    }

    /// `FaultSpec` grammar round trip (DESIGN.md §5c): for any valid
    /// spec — arbitrary rate/window/phase combinations, `until`,
    /// recovery, watchdog — `parse(spec.to_string())` reproduces the
    /// spec field for field. The canonical `Display` form is what the
    /// bench banners echo and what chaos tests embed, so it must never
    /// drift from the parser.
    #[test]
    fn fault_spec_display_parse_round_trips(
        seed in any::<u64>(),
        drop in (0u32..=1024, 0u8..3, 0u64..1_000_000, 1u64..1_000_000),
        corrupt in (0u32..=1024, 0u8..3, 0u64..1_000_000, 1u64..1_000_000),
        delay in ((0u32..=1024, 1u64..100_000), (0u8..3, 0u64..1_000_000, 1u64..1_000_000)),
        linkdown in (0u64..5_000, 1u64..100_000, (0u8..3, 0u64..1_000_000, 1u64..1_000_000)),
        ackloss in (0u32..=1024, 0u8..3, 0u64..1_000_000, 1u64..1_000_000),
        mmio in ((0u32..=1024, 0u32..=1024), (0u8..3, 0u64..1_000_000, 1u64..1_000_000)),
        stall in (0u64..5_000, 1u64..100_000, (0u8..3, 0u64..1_000_000, 1u64..1_000_000)),
        until in (any::<bool>(), 1u64..10_000_000),
        recovery in any::<bool>(),
        watchdog in (any::<bool>(), 1u64..100_000_000),
    ) {
        let mut spec = FaultSpec::none();
        spec.seed = seed;
        // A key is only displayed when its rate/duration is non-zero, so
        // a phase bound can only survive the round trip on active keys.
        let gate = |active: bool, (m, s, l): (u8, u64, u64)| {
            if active { phase_of(m, s, l) } else { Phase::ALWAYS }
        };
        spec.tlp_drop_p = prob_of(drop.0);
        spec.tlp_drop_phase = gate(drop.0 > 0, (drop.1, drop.2, drop.3));
        spec.tlp_corrupt_p = prob_of(corrupt.0);
        spec.tlp_corrupt_phase = gate(corrupt.0 > 0, (corrupt.1, corrupt.2, corrupt.3));
        spec.tlp_delay_p = prob_of(delay.0.0);
        spec.tlp_delay_cycles = delay.0.1;
        spec.tlp_delay_phase = gate(delay.0.0 > 0, delay.1);
        spec.link_down_duration = linkdown.0;
        spec.link_down_period = linkdown.0 + linkdown.1;
        spec.link_phase = gate(linkdown.0 > 0, linkdown.2);
        spec.ack_loss_p = prob_of(ackloss.0);
        spec.ack_phase = gate(ackloss.0 > 0, (ackloss.1, ackloss.2, ackloss.3));
        spec.mmio_stuck_p = prob_of(mmio.0.0);
        spec.mmio_stuck_phase = gate(mmio.0.0 > 0, mmio.1);
        spec.mmio_garble_p = prob_of(mmio.0.1);
        spec.mmio_garble_phase = gate(mmio.0.1 > 0, mmio.1);
        spec.stall_duration = stall.0;
        spec.stall_period = stall.0 + stall.1;
        spec.stall_phase = gate(stall.0 > 0, stall.2);
        spec.until = until.0.then_some(until.1);
        spec.recovery = recovery;
        spec.watchdog = watchdog.0.then_some(watchdog.1);

        let shown = spec.to_string();
        let parsed = FaultSpec::parse(&shown);
        prop_assert_eq!(parsed.as_ref(), Ok(&spec), "canonical form {:?} must re-parse", shown);
        // And the canonical form is a fixed point.
        prop_assert_eq!(parsed.unwrap().to_string(), shown);
    }

    /// The parser never panics: arbitrary byte soup (lossily decoded)
    /// and adversarial token assemblies both return `Ok` or `Err`,
    /// never abort. `VSCC_FAULTS` comes straight from the environment,
    /// so this is the "hostile input" half of the grammar contract.
    #[test]
    fn fault_spec_parse_never_panics(
        raw in prop::collection::vec(any::<u8>(), 0..120),
        tokens in prop::collection::vec(0usize..18, 0..40),
    ) {
        let _ = FaultSpec::parse(&String::from_utf8_lossy(&raw));
        // Grammar-adjacent soup: fragments of real keys, separators, and
        // numbers glued in arbitrary orders hit the deep error paths
        // (half-phases, double '@', empty sides, huge numbers).
        const FRAGMENTS: [&str; 18] = [
            "drop=", "delay=", "linkdown=", "stall=", "ackloss=", "seed=", "until=",
            "recovery=", "watchdog=", "0.5", "1000", "@", "..", ",", ":", "on",
            "18446744073709551615", "-3",
        ];
        let soup: String = tokens.iter().map(|&i| FRAGMENTS[i]).collect();
        let _ = FaultSpec::parse(&soup);
    }

    /// Pool recycling never resurrects stale payload bytes: a chunk that
    /// held arbitrary garbage comes back zeroed from `Pool::get`, for any
    /// interleaving of sizes.
    #[test]
    fn pool_recycle_returns_zeroed_chunks(
        rounds in prop::collection::vec((1usize..70_000, any::<u8>()), 1..20),
    ) {
        let pool = des::bytes::Pool::new();
        for (len, fill) in rounds {
            let mut b = pool.get(len);
            prop_assert_eq!(b.len(), len);
            prop_assert!(b.iter().all(|&x| x == 0), "pooled chunk of {} B must be zeroed", len);
            // Dirty the chunk (and freeze half the time via the fill
            // parity so both return paths recycle), then drop it back.
            b.iter_mut().for_each(|x| *x = fill | 1);
            if fill % 2 == 0 {
                drop(b);
            } else {
                drop(b.freeze());
            }
        }
    }
}
