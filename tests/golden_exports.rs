//! Golden-file regression for the observability exports on the fig6b
//! workload (inter-device ping-pong, every scheme).
//!
//! The zero-copy payload plane (and any future data-path change) must
//! not perturb virtual time or metrics: a clean run's `VSCC_TRACE` and
//! `VSCC_METRICS` exports are required to stay **byte-identical**. This
//! test renders both exports for each scheme at a sub-chunk and an
//! over-chunk size and compares them against the committed goldens in
//! `tests/goldens/`.
//!
//! Regenerate (only when an *intentional* timing/metrics change lands)
//! with:
//!
//! ```sh
//! VSCC_GOLDEN_REGEN=1 cargo test --test golden_exports
//! ```

use std::path::PathBuf;

use vscc::CommScheme;

const SCHEMES: [(&str, CommScheme); 5] = [
    ("simple_routing", CommScheme::SimpleRouting),
    ("remote_put_hwack", CommScheme::RemotePutHwAck),
    ("remote_put_wcb", CommScheme::RemotePutWcb),
    ("local_put_remote_get", CommScheme::LocalPutRemoteGet),
    ("local_put_local_get", CommScheme::LocalPutLocalGet),
];

/// 1 KiB stays inside one protocol chunk; 8 KiB crosses the MPB window
/// boundary the fig6b dip analysis cares about.
const SIZES: [usize; 2] = [1024, 8192];

/// Render the trace/metrics exports with the given engine selection
/// (`None` = serial, `Some(n)` = sharded via the thread-local
/// [`des::shard::force_shards`] hook — tests must not race the
/// process-global environment). Rendered on a dedicated thread so the
/// force override never leaks into other tests.
fn render_exports(shards: Option<u32>) -> (String, String) {
    std::thread::spawn(move || {
        des::shard::force_shards(shards);
        let mut traces = String::new();
        let mut metrics = String::new();
        for (name, scheme) in SCHEMES {
            for size in SIZES {
                let (point, trace, reg) =
                    vscc_apps::pingpong::interdevice_observed(scheme, size, 1);
                traces.push_str(&format!("=== {name} size={size} cycles={} ===\n", point.cycles));
                traces.push_str(&des::obs::chrome_trace_json(&[("pingpong", &trace)]));
                traces.push('\n');
                metrics.push_str(&format!("=== {name} size={size} cycles={} ===\n", point.cycles));
                metrics.push_str(&reg.snapshot().to_json());
                metrics.push('\n');
            }
        }
        (traces, metrics)
    })
    .join()
    .expect("render thread")
}

/// The `VSCC_TIMESERIES` export golden: the two headline schemes,
/// sampled at the default cadence. Rendered on a dedicated thread
/// because the pool-occupancy series reads the thread-local chunk pool
/// — a fresh thread pins its starting state.
fn render_timeseries(shards: Option<u32>) -> String {
    std::thread::spawn(move || {
        des::shard::force_shards(shards);
        let mut out = String::new();
        for (name, scheme) in [
            ("local_put_remote_get", CommScheme::LocalPutRemoteGet),
            ("local_put_local_get", CommScheme::LocalPutLocalGet),
        ] {
            let (point, _, _, ts) = vscc_apps::pingpong::interdevice_sampled(
                scheme,
                8192,
                1,
                des::obs::DEFAULT_CADENCE,
            );
            out.push_str(&format!("=== {name} size=8192 cycles={} ===\n", point.cycles));
            out.push_str(&ts.to_json());
        }
        out
    })
    .join()
    .expect("render thread")
}

/// The `VSCC_AUDIT` export golden: the two headline schemes audited at
/// the default epoch cadence. Rendered on a dedicated thread because
/// the audit sink is thread-local and the runs must start from a fresh
/// chunk-pool state, exactly like the time-series golden.
fn render_audit(shards: Option<u32>) -> String {
    std::thread::spawn(move || {
        des::shard::force_shards(shards);
        let mut out = String::new();
        for (name, scheme) in [
            ("local_put_remote_get", CommScheme::LocalPutRemoteGet),
            ("local_put_local_get", CommScheme::LocalPutLocalGet),
        ] {
            let (point, audit) = vscc_apps::pingpong::interdevice_audited(
                scheme,
                8192,
                1,
                des::audit::DEFAULT_EPOCH_CYCLES,
                None,
                None,
            );
            out.push_str(&format!("=== {name} size=8192 cycles={} ===\n", point.cycles));
            out.push_str(&audit.to_json());
        }
        out
    })
    .join()
    .expect("render thread")
}

fn goldens_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens")
}

#[test]
fn interdevice_exports_are_byte_identical_to_goldens() {
    let (traces, metrics) = render_exports(None);
    let dir = goldens_dir();
    let trace_path = dir.join("fig6b_trace_exports.txt");
    let metrics_path = dir.join("fig6b_metrics_exports.txt");

    if std::env::var("VSCC_GOLDEN_REGEN").map(|v| v == "1").unwrap_or(false) {
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&trace_path, &traces).unwrap();
        std::fs::write(&metrics_path, &metrics).unwrap();
        eprintln!("regenerated {} and {}", trace_path.display(), metrics_path.display());
        return;
    }

    let want_traces = std::fs::read_to_string(&trace_path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with VSCC_GOLDEN_REGEN=1 to create it",
            trace_path.display()
        )
    });
    let want_metrics = std::fs::read_to_string(&metrics_path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with VSCC_GOLDEN_REGEN=1 to create it",
            metrics_path.display()
        )
    });

    assert_exports_equal("trace", &want_traces, &traces);
    assert_exports_equal("metrics", &want_metrics, &metrics);
}

#[test]
fn interdevice_timeseries_export_matches_golden() {
    let timeseries = render_timeseries(None);
    let path = goldens_dir().join("fig6b_timeseries_exports.txt");

    if std::env::var("VSCC_GOLDEN_REGEN").map(|v| v == "1").unwrap_or(false) {
        std::fs::create_dir_all(goldens_dir()).unwrap();
        std::fs::write(&path, &timeseries).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }

    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {} ({e}); run with VSCC_GOLDEN_REGEN=1 to create it", path.display())
    });
    assert_exports_equal("timeseries", &want, &timeseries);
}

#[test]
fn interdevice_audit_export_matches_golden() {
    let audit = render_audit(None);
    let path = goldens_dir().join("fig6b_audit_exports.txt");

    if std::env::var("VSCC_GOLDEN_REGEN").map(|v| v == "1").unwrap_or(false) {
        std::fs::create_dir_all(goldens_dir()).unwrap();
        std::fs::write(&path, &audit).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }

    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {} ({e}); run with VSCC_GOLDEN_REGEN=1 to create it", path.display())
    });
    assert_exports_equal("audit", &want, &audit);
}

/// The sharded engine's correctness contract (DESIGN.md §5i): with
/// `VSCC_SHARDS` in effect, every fig6b export — trace, metrics,
/// time-series, audit — must stay **byte-identical** to the committed
/// *serial* goldens at any worker count. The host↔device MMIO boundary
/// is latency-stamped at the tunnel lookahead, so the fig6b system
/// partitions into one execution group per device plus the host; this
/// test pins that neither the epoch-sliced windows nor the partition
/// can perturb virtual time, metrics, sampling, or the audited
/// decision stream — at one worker, at two, and at the full
/// one-worker-per-group count.
#[test]
fn sharded_exports_match_serial_goldens() {
    if std::env::var("VSCC_GOLDEN_REGEN").map(|v| v == "1").unwrap_or(false) {
        // Goldens are always regenerated from the serial engine.
        return;
    }
    let dir = goldens_dir();
    let want = |file: &str| {
        let path = dir.join(file);
        std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden {} ({e}); run with VSCC_GOLDEN_REGEN=1 to create it",
                path.display()
            )
        })
    };

    for shards in [1u32, 2, 5] {
        let (traces, metrics) = render_exports(Some(shards));
        assert_exports_equal(
            &format!("sharded({shards}) trace"),
            &want("fig6b_trace_exports.txt"),
            &traces,
        );
        assert_exports_equal(
            &format!("sharded({shards}) metrics"),
            &want("fig6b_metrics_exports.txt"),
            &metrics,
        );
        assert_exports_equal(
            &format!("sharded({shards}) timeseries"),
            &want("fig6b_timeseries_exports.txt"),
            &render_timeseries(Some(shards)),
        );
        assert_exports_equal(
            &format!("sharded({shards}) audit"),
            &want("fig6b_audit_exports.txt"),
            &render_audit(Some(shards)),
        );
    }
}

/// Byte-compare with a diff-friendly failure: report the first
/// divergent line instead of dumping two multi-hundred-KiB blobs.
fn assert_exports_equal(kind: &str, want: &str, got: &str) {
    if want == got {
        return;
    }
    for (i, (w, g)) in want.lines().zip(got.lines()).enumerate() {
        if w != g {
            panic!(
                "{kind} export diverged from golden at line {}:\n  golden:  {w}\n  current: {g}\n\
                 (a data-path change must not shift virtual time or metrics; \
                 regenerate with VSCC_GOLDEN_REGEN=1 only if the change is intentional)",
                i + 1
            );
        }
    }
    panic!(
        "{kind} export length diverged from golden ({} vs {} lines)",
        want.lines().count(),
        got.lines().count()
    );
}
