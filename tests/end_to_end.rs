//! Cross-crate integration tests: whole applications over whole systems.

use des::Sim;
use vscc::{CommScheme, OnchipProtocol, VsccBuilder};
use vscc_apps::npb::{run_bt, BtClass, BtConfig};
use vscc_apps::stencil::{initial_heat, run_stencil, StencilConfig};
use vscc_apps::traffic::TrafficMatrix;

/// Ranks spread across both devices so halo/sweep traffic crosses the
/// tunnel.
fn split_session(scheme: CommScheme, per_device: usize) -> (Sim, rcce::Session) {
    let sim = Sim::new();
    let v = VsccBuilder::new(&sim, 2).scheme(scheme).build();
    let s = v.session_builder().cores_per_device(per_device).build();
    (sim, s)
}

#[test]
fn stencil_conserves_heat_under_every_scheme() {
    for scheme in CommScheme::ALL {
        let (_sim, s) = split_session(scheme, 2);
        let cfg = StencilConfig { width: 16, height: 16, iterations: 8 };
        let res = run_stencil(&s, &cfg).unwrap_or_else(|e| panic!("{scheme:?}: {e}"));
        assert!(
            (res.total_heat - initial_heat(&cfg)).abs() < 1e-6,
            "{scheme:?} lost heat: {} vs {}",
            res.total_heat,
            initial_heat(&cfg)
        );
    }
}

#[test]
fn stencil_result_identical_across_schemes() {
    // The transport must never change the numerics.
    let mut totals = Vec::new();
    for scheme in CommScheme::ALL {
        let (_sim, s) = split_session(scheme, 2);
        let cfg = StencilConfig { width: 12, height: 12, iterations: 10 };
        totals.push(run_stencil(&s, &cfg).unwrap().residual);
    }
    for w in totals.windows(2) {
        assert!((w[0] - w[1]).abs() < 1e-12, "schemes disagree on the physics: {totals:?}");
    }
}

#[test]
fn bt_verifies_under_every_scheme_cross_device() {
    for scheme in CommScheme::ALL {
        let (_sim, s) = split_session(scheme, 8);
        let mut cfg = BtConfig::new(BtClass::S, 16);
        cfg.measured = 2;
        let res = run_bt(&s, &cfg).unwrap_or_else(|e| panic!("{scheme:?}: {e}"));
        assert!(res.verified, "{scheme:?} corrupted BT payloads");
    }
}

#[test]
fn bt_best_scheme_beats_routing_cross_device() {
    let gf = |scheme| {
        let (_sim, s) = split_session(scheme, 8);
        let mut cfg = BtConfig::new(BtClass::W, 16);
        cfg.measured = 2;
        run_bt(&s, &cfg).unwrap().gflops
    };
    let best = gf(CommScheme::LocalPutLocalGet);
    let worst = gf(CommScheme::SimpleRouting);
    assert!(
        best > 1.5 * worst,
        "host acceleration must clearly win: best {best:.2} vs routing {worst:.2} GF/s"
    );
}

#[test]
fn bt_traffic_matrix_structure() {
    let (_sim, s) = split_session(CommScheme::LocalPutLocalGet, 8);
    let mut cfg = BtConfig::new(BtClass::W, 16);
    cfg.measured = 2;
    run_bt(&s, &cfg).unwrap();
    let m = TrafficMatrix::capture(&s);
    assert!(m.total() > 0);
    assert!(m.inter_device_fraction() > 0.0, "the split run must cross the tunnel");
    assert!(m.neighbour_fraction(5) > 0.5, "BT is neighbourhood-dominated");
    // The render must show the device boundary.
    assert!(m.render().contains('|'));
}

#[test]
fn full_system_240_ranks_barrier_and_reduce() {
    let sim = Sim::new();
    let v = VsccBuilder::new(&sim, 5).scheme(CommScheme::LocalPutLocalGet).build();
    let s = v.session();
    assert_eq!(s.num_ranks(), 240);
    let out = s
        .run_app(|r| async move {
            r.barrier().await;
            let sum = r.allreduce_f64(1.0, rcce::collectives::Op::Sum).await;
            r.barrier().await;
            sum
        })
        .unwrap();
    assert!(out.iter().all(|&x| x == 240.0));
}

#[test]
fn boot_failures_then_application_still_runs() {
    let sim = Sim::new();
    let v = VsccBuilder::new(&sim, 3)
        .scheme(CommScheme::LocalPutLocalGet)
        .boot(scc::device::BootConfig { core_failure_prob: 0.08, seed: 7 })
        .build();
    let alive = v.alive_cores();
    assert!(alive < 144, "failures must drop cores");
    // The startup-script extension compacts ranks over survivors (§4).
    let s = v.session();
    assert_eq!(s.num_ranks(), alive);
    let out = s
        .run_app(|r| async move {
            let n = r.num_ues();
            let next = (r.id() + 1) % n;
            let prev = (r.id() + n - 1) % n;
            let req = r.isend(vec![(r.id() % 251) as u8; 512], next);
            let got = r.recv_vec(512, prev).await;
            req.wait().await;
            got == vec![(prev % 251) as u8; 512]
        })
        .unwrap();
    assert!(out.iter().all(|&ok| ok), "ring exchange over surviving cores failed");
}

#[test]
fn pipelined_onchip_with_vdma_interdevice() {
    // The paper's runtime composes iRCCE on-chip with the host-assisted
    // path across devices.
    let sim = Sim::new();
    let v = VsccBuilder::new(&sim, 2)
        .scheme(CommScheme::LocalPutLocalGet)
        .onchip(OnchipProtocol::Pipelined)
        .build();
    let s = v.session_builder().cores_per_device(4).build();
    let out = s
        .run_app(|r| async move {
            let n = r.num_ues();
            let peer = (r.id() + n / 2) % n; // always cross-device
            let near = r.id() ^ 1; // always same device
            let msg = vec![r.id() as u8; 20_000];
            let a = r.isend(msg.clone(), peer);
            let b = r.isend(msg, near);
            let far = r.recv_vec(20_000, (r.id() + n / 2) % n).await;
            let close = r.recv_vec(20_000, r.id() ^ 1).await;
            a.wait().await;
            b.wait().await;
            far == vec![(peer % 256) as u8; 20_000] && close == vec![(near % 256) as u8; 20_000]
        })
        .unwrap();
    assert!(out.iter().all(|&ok| ok));
}

#[test]
fn whole_system_runs_are_deterministic() {
    let run = || {
        let sim = Sim::new();
        let v = VsccBuilder::new(&sim, 2).scheme(CommScheme::LocalPutLocalGet).build();
        let s = v.session_builder().cores_per_device(6).max_ranks(9).build();
        let mut cfg = BtConfig::new(BtClass::S, 9);
        cfg.measured = 2;
        let res = run_bt(&s, &cfg).unwrap();
        (sim.now(), res.cycles, res.messages)
    };
    assert_eq!(run(), run());
}

#[test]
fn fastack_scheme_errors_surface_in_stats() {
    // Heavy traffic on 3 coupled devices must record lost acks.
    let sim = Sim::new();
    let v = VsccBuilder::new(&sim, 3).scheme(CommScheme::RemotePutHwAck).build();
    let a = v.devices[0].global(scc::geometry::CoreId(0));
    let b = v.devices[1].global(scc::geometry::CoreId(0));
    let s = v.session_builder().participants(vec![a, b]).build();
    s.run_app(|r| async move {
        for _ in 0..40 {
            if r.id() == 0 {
                r.send(&vec![1u8; 7680], 1).await;
            } else {
                let mut buf = vec![0u8; 7680];
                r.recv(&mut buf, 0).await;
            }
        }
    })
    .unwrap();
    let (writes, _lost) = v.host.fastack.stats();
    assert!(writes > 9_000, "posted-write accounting missing: {writes}");
    assert!(v.host.fastack.loss_probability() > 0.0, "3 devices must be in the unstable regime");
}
