//! Chaos tests for the fault-injection plane + host recovery layer
//! (DESIGN.md §"Fault injection & recovery").
//!
//! The property under test: with a seeded fault plan active and the
//! recovery layer on, every run either completes with verified payloads
//! or fails with a *diagnosed* error (`SimError::Aborted` from a poll
//! watchdog or an exhausted retry ladder, `Deadlock`, or
//! `HorizonExceeded`). Never a hang, never silent corruption. And every
//! faulty run is deterministic: identical seeds reproduce identical
//! metrics snapshots, traces, and virtual clocks byte for byte.

use des::faultplan::FaultSpec;
use des::obs::Registry;
use des::trace::Category;
use des::{Sim, SimError};
use scc::geometry::CoreId;
use vscc::{CommScheme, VsccBuilder};
use vscc_apps::npb::{run_bt, BtClass, BtConfig};

/// Generous watchdog for recovered runs: well above the worst legitimate
/// wait (a full message plus a complete retry ladder), so it only trips
/// on a genuine hang.
const WATCHDOG: &str = "watchdog=20000000";

/// Everything a chaos run leaves behind, harvested before teardown.
struct ChaosRun {
    /// Per-rank "all my payloads verified" verdicts (Err on abort).
    result: Result<Vec<bool>, SimError>,
    metrics_json: String,
    trace_json: String,
    fault_events: usize,
    checksum_detected: u64,
    tunnel_retries: u64,
    demotions: u64,
    fallback_writes: u64,
    demoted_pairs: usize,
    promotions: u64,
    end: u64,
}

/// A verified bidirectional ping-pong between core 0 of each device under
/// the given fault spec. Both directions check every received byte, so a
/// corrupted delivery that sneaks past recovery shows up as `ok = false`,
/// not as a passing run.
fn pingpong_chaos(scheme: CommScheme, spec: &str, size: usize, reps: usize) -> ChaosRun {
    let spec = FaultSpec::parse(spec).expect("chaos spec");
    let sim = Sim::new();
    let reg = Registry::new();
    let v = VsccBuilder::new(&sim, 2)
        .scheme(scheme)
        .metrics_registry(&reg)
        .trace_categories(&Category::ALL)
        .faults(spec)
        .build();
    let a = v.devices[0].global(CoreId(0));
    let b = v.devices[1].global(CoreId(0));
    let s = v.session_builder().participants(vec![a, b]).build();
    let result = s.run_app(move |r| async move {
        let mut ok = true;
        for i in 0..reps {
            let fill = (i as u8).wrapping_mul(31).wrapping_add(7);
            if r.id() == 0 {
                r.send(&vec![fill; size], 1).await;
                let mut back = vec![0u8; size];
                r.recv(&mut back, 1).await;
                ok &= back == vec![fill ^ 0xA5; size];
            } else {
                let mut buf = vec![0u8; size];
                r.recv(&mut buf, 0).await;
                ok &= buf == vec![fill; size];
                r.send(&vec![fill ^ 0xA5; size], 0).await;
            }
        }
        ok
    });
    let rstats = &v.host.rstats;
    ChaosRun {
        metrics_json: reg.snapshot().to_json(),
        trace_json: des::obs::chrome_trace_json(&[("chaos", v.trace())]),
        fault_events: v.trace().events_in(Category::Fault).len(),
        checksum_detected: rstats.checksum_detected.get(),
        tunnel_retries: rstats.payload_retries.get()
            + rstats.vdma_retries.get()
            + rstats.prefetch_retries.get()
            + rstats.mmio_retries.get(),
        demotions: rstats.demotions.get(),
        fallback_writes: rstats.fallback_writes.get(),
        demoted_pairs: v.host.demoted_pairs().len(),
        promotions: v.host.health.promotions.get(),
        end: sim.now(),
        result,
    }
}

/// A small cross-device NPB BT run (4 ranks, 2 per device) under the
/// given fault spec; `Ok(verified)` or the diagnosed error.
fn bt_chaos(spec: &str) -> Result<bool, SimError> {
    let spec = FaultSpec::parse(spec).expect("chaos spec");
    let sim = Sim::new();
    let v = VsccBuilder::new(&sim, 2).scheme(CommScheme::LocalPutLocalGet).faults(spec).build();
    let s = v.session_builder().cores_per_device(2).build();
    let mut cfg = BtConfig::new(BtClass::S, 4);
    cfg.measured = 2;
    run_bt(&s, &cfg).map(|r| r.verified)
}

/// A run that ended acceptably: verified payloads, or a diagnosed error.
/// (A hang would never return; a panic fails the test outright.)
fn acceptable(result: &Result<Vec<bool>, SimError>) -> bool {
    match result {
        Ok(oks) => oks.iter().all(|&ok| ok),
        Err(SimError::Aborted(_) | SimError::Deadlock(_) | SimError::HorizonExceeded(_)) => true,
    }
}

/// ISSUE acceptance criterion: a seeded fault plan corrupting a tunnel
/// payload is (a) detected by the checksum, (b) retried and recovered,
/// (c) visible as `host.retry.*` metrics and `Fault`-category trace
/// events.
#[test]
fn corrupted_tunnel_payload_is_detected_retried_and_recovered() {
    let r = pingpong_chaos(
        CommScheme::LocalPutLocalGet,
        &format!("seed=11,corrupt=0.2,recovery=on,{WATCHDOG}"),
        6000,
        8,
    );
    let oks = r.result.expect("recovery must carry the run to completion");
    assert!(oks.iter().all(|&ok| ok), "every delivered payload must verify");
    assert!(r.checksum_detected > 0, "(a) the checksum must catch injected corruption");
    assert!(r.tunnel_retries > 0, "(b) detected corruption must be retried");
    assert!(r.fault_events > 0, "(c) recovery activity must land in the Fault trace category");
    assert!(
        r.metrics_json.contains("\"host.retry.checksum_detected\""),
        "(c) retry counters must surface in the metrics registry"
    );
    assert!(
        r.trace_json.contains("\"cat\":\"fault\""),
        "(c) Fault events must survive the Chrome export"
    );
}

/// Graceful degradation: a pair losing fast acks on three consecutive
/// messages is demoted from remote-put to the host-acked fallback, and
/// the session still completes with verified payloads.
#[test]
fn lossy_pair_is_demoted_to_the_host_acked_path() {
    let r = pingpong_chaos(
        CommScheme::RemotePutHwAck,
        &format!("seed=12,ackloss=0.05,recovery=on,{WATCHDOG}"),
        7680,
        8,
    );
    let oks = r.result.expect("fallback must carry the run to completion");
    assert!(oks.iter().all(|&ok| ok), "payloads must verify across the demotion");
    assert!(r.demotions >= 1, "a persistently lossy pair must be demoted");
    assert!(r.fallback_writes > 0, "post-demotion writes must use the fallback path");
    // With the self-healing plane, a mildly lossy pair (5% ack loss) may
    // pass its canary probes and re-promote before the run ends — the
    // pair must either still be queryable as demoted, or have healed.
    assert!(
        r.demoted_pairs >= 1 || r.promotions >= 1,
        "the demoted pair must be queryable or probed back to health"
    );
}

/// The self-healing property (DESIGN.md §5h): a pair demoted during an
/// ack-loss storm that *ends* (phase-bounded plan) is probed back to
/// Healthy once the plan goes quiet — zero demoted pairs at the end of
/// the run, with the promotion on the books — and the whole healing arc
/// is deterministic: two identical runs export byte-identical audit
/// digests.
#[test]
fn demoted_pair_heals_after_the_storm_ends() {
    let run = || {
        // Storm then quiet: 80% ack loss on every posted line until cycle
        // 800 k, nothing after. 512 B messages keep the per-burst loss
        // penalty small enough that several bursts land inside the storm
        // (the demotion needs three consecutive lossy ones).
        let spec =
            FaultSpec::parse(&format!("seed=13,ackloss=0.8@..800000,recovery=on,{WATCHDOG}"))
                .expect("healing spec");
        let audit = des::audit::Audit::new(25_000);
        let guard = audit.install();
        let sim = Sim::new();
        // Dense probing so the heal-and-repromote arc fits a fast test;
        // production cadence comes from the PCIe model (DESIGN.md §5h).
        let rc = vscc::host::RecoveryConfig {
            probe_interval: 20_000,
            probe_backoff_max: 160_000,
            ..Default::default()
        };
        let v = VsccBuilder::new(&sim, 2)
            .scheme(CommScheme::RemotePutHwAck)
            .recovery_config(rc)
            .faults(spec)
            .build();
        let a = v.devices[0].global(CoreId(0));
        let b = v.devices[1].global(CoreId(0));
        let s = v.session_builder().participants(vec![a, b]).build();
        // Hold the virtual clock open past the storm plus the full probe
        // backoff, so the (daemon) probers get to finish the healing arc
        // even after the app's traffic drains.
        let keepalive = sim.clone();
        sim.spawn_named("post-storm-idle", async move {
            keepalive.delay(3_000_000).await;
        });
        let result = s.run_app(move |r| async move {
            let mut ok = true;
            for i in 0..16u32 {
                let fill = (i as u8).wrapping_mul(29).wrapping_add(3);
                if r.id() == 0 {
                    r.send(&vec![fill; 512], 1).await;
                } else {
                    let mut buf = vec![0u8; 512];
                    r.recv(&mut buf, 0).await;
                    ok &= buf == vec![fill; 512];
                }
            }
            ok
        });
        drop(guard);
        let oks = result.expect("healing run must complete");
        assert!(oks.iter().all(|&ok| ok), "payloads must verify across demote and heal");
        assert!(v.host.rstats.demotions.get() >= 1, "the storm must demote the pair");
        assert!(v.host.health.promotions.get() >= 1, "a probe must re-promote the pair");
        assert!(
            v.host.demoted_pairs().is_empty(),
            "no pair may stay demoted once the plan is quiet, got {:?}",
            v.host.health_states()
        );
        (audit.to_json(), sim.now())
    };
    let (audit_a, end_a) = run();
    let (audit_b, end_b) = run();
    assert_eq!(end_a, end_b, "healing runs must land on the same virtual clock");
    assert_eq!(audit_a, audit_b, "healing runs must export byte-identical audit digests");
    match des::audit::diff_exports(&audit_a, &audit_b) {
        Ok(None) => {}
        other => panic!("audit_diff must report no divergence, got {other:?}"),
    }
}

/// The chaos property: seeded fault plans mixing every fault class must
/// end in verified payloads or a diagnosed error — never a hang, never
/// silent corruption.
#[test]
fn chaos_plans_end_verified_or_diagnosed() {
    let specs = [
        format!("seed=1,drop=0.02,recovery=on,{WATCHDOG}"),
        format!("seed=2,corrupt=0.05,recovery=on,{WATCHDOG}"),
        format!("seed=3,delay=0.1:5000,recovery=on,{WATCHDOG}"),
        format!("seed=4,linkdown=4000@400000,recovery=on,{WATCHDOG}"),
        format!("seed=5,stall=3000@300000,recovery=on,{WATCHDOG}"),
        format!("seed=6,ackloss=0.01,recovery=on,{WATCHDOG}"),
        format!("seed=7,drop=0.01,corrupt=0.02,delay=0.05:2000,recovery=on,{WATCHDOG}"),
        format!("seed=8,mmio_garble=0.05,recovery=on,{WATCHDOG}"),
    ];
    for spec in &specs {
        // ackloss only bites on the fast-ack scheme; everything else
        // exercises the vDMA tunnel path.
        let scheme = if spec.contains("ackloss") {
            CommScheme::RemotePutHwAck
        } else {
            CommScheme::LocalPutLocalGet
        };
        let r = pingpong_chaos(scheme, spec, 6000, 6);
        assert!(
            acceptable(&r.result),
            "{spec}: run must end verified or diagnosed, got {:?}",
            r.result
        );
    }
}

/// The same property over a real application: a small cross-device BT
/// run under mixed fault plans verifies or fails diagnosed.
#[test]
fn chaos_plans_over_bt_end_verified_or_diagnosed() {
    let specs = [
        format!("seed=21,drop=0.01,recovery=on,{WATCHDOG}"),
        format!("seed=22,corrupt=0.02,recovery=on,{WATCHDOG}"),
        format!("seed=23,linkdown=3000@500000,stall=2000@400000,recovery=on,{WATCHDOG}"),
        format!("seed=24,drop=0.005,corrupt=0.01,delay=0.02:3000,recovery=on,{WATCHDOG}"),
    ];
    for spec in &specs {
        match bt_chaos(spec) {
            Ok(verified) => assert!(verified, "{spec}: BT completed but payloads are corrupt"),
            Err(SimError::Aborted(_) | SimError::Deadlock(_) | SimError::HorizonExceeded(_)) => {}
        }
    }
}

/// Determinism under faults: two identical faulty runs export
/// byte-identical metrics snapshots and Chrome traces and land on the
/// same virtual clock.
#[test]
fn faulty_runs_are_byte_identical_across_reruns() {
    let spec = format!("seed=31,drop=0.02,corrupt=0.02,recovery=on,{WATCHDOG}");
    let a = pingpong_chaos(CommScheme::LocalPutLocalGet, &spec, 6000, 6);
    let b = pingpong_chaos(CommScheme::LocalPutLocalGet, &spec, 6000, 6);
    assert_eq!(a.metrics_json, b.metrics_json, "faulty metrics must be deterministic");
    assert_eq!(a.trace_json, b.trace_json, "faulty traces must be deterministic");
    assert_eq!(a.end, b.end, "faulty runs must land on the same virtual clock");
    assert!(a.fault_events > 0, "the plan must actually have injected something");
}

/// Determinism across engines under faults (DESIGN.md §5i): a seeded
/// fault plan must produce byte-identical audited exports whether the
/// run is serial or epoch-sliced at any `VSCC_SHARDS` count. Each run
/// renders on a dedicated thread (fresh chunk-pool state, and the
/// thread-local `force_shards` hook never races other tests through the
/// process environment).
#[test]
fn faulty_audited_exports_are_identical_across_shard_counts() {
    fn audited_run(shards: Option<u32>) -> (u64, String) {
        std::thread::spawn(move || {
            des::shard::force_shards(shards);
            let spec = FaultSpec::parse(&format!("seed=61,corrupt=0.05,recovery=on,{WATCHDOG}"))
                .expect("chaos spec");
            let (point, audit) = vscc_apps::pingpong::interdevice_audited(
                CommScheme::LocalPutLocalGet,
                6000,
                4,
                des::audit::DEFAULT_EPOCH_CYCLES,
                None,
                Some(spec),
            );
            (point.cycles, audit.to_json())
        })
        .join()
        .expect("audited chaos run")
    }

    let (serial_end, serial_json) = audited_run(None);
    for shards in [1u32, 2, 4, 5] {
        let (end, json) = audited_run(Some(shards));
        assert_eq!(end, serial_end, "shards={shards}: virtual clock diverged from serial");
        assert_eq!(json, serial_json, "shards={shards}: audited export diverged from serial");
    }
}

/// Same identity under a *storm* plan (phase-bounded ack-loss burst plus
/// corruption) at the full one-worker-per-group shard count: the
/// multi-group partition (DESIGN.md §5i) must not let a fault storm
/// observe the engine selection. Shards 1 vs 5 bracket the partition —
/// one worker driving every group vs one worker per group.
#[test]
fn storm_plan_is_identical_at_shards_1_and_5() {
    fn audited_storm(shards: Option<u32>) -> (u64, String) {
        std::thread::spawn(move || {
            des::shard::force_shards(shards);
            let spec = FaultSpec::parse(&format!(
                "seed=29,ackloss=0.6@..600000,corrupt=0.03,recovery=on,{WATCHDOG}"
            ))
            .expect("storm spec");
            let (point, audit) = vscc_apps::pingpong::interdevice_audited(
                CommScheme::RemotePutHwAck,
                4096,
                4,
                des::audit::DEFAULT_EPOCH_CYCLES,
                None,
                Some(spec),
            );
            (point.cycles, audit.to_json())
        })
        .join()
        .expect("audited storm run")
    }

    let (end_1, json_1) = audited_storm(Some(1));
    let (end_5, json_5) = audited_storm(Some(5));
    assert_eq!(end_1, end_5, "storm run diverged between shards 1 and 5");
    assert_eq!(json_1, json_5, "storm audit export diverged between shards 1 and 5");
}

/// A drop storm past what the retry ladder can absorb must be converted
/// into a diagnosed abort (exhausted retries or a poll-watchdog trip),
/// not an infinite flag poll.
#[test]
fn drop_storm_is_diagnosed_not_hung() {
    let r = pingpong_chaos(
        CommScheme::LocalPutLocalGet,
        &format!("seed=41,drop=0.95,recovery=on,{WATCHDOG}"),
        6000,
        5,
    );
    match r.result {
        Err(SimError::Aborted(msg)) => assert!(
            msg.contains("poll watchdog") || msg.contains("retries exhausted"),
            "abort must carry the diagnosis, got: {msg}"
        ),
        other => panic!("expected a diagnosed abort, got {other:?}"),
    }
}

/// Fast fixed-seed smoke for `scripts/check.sh`: one corrupting plan,
/// recovered end to end in well under ten seconds.
#[test]
fn smoke_fixed_seed_corruption_recovers() {
    let r = pingpong_chaos(
        CommScheme::LocalPutLocalGet,
        &format!("seed=51,corrupt=0.25,recovery=on,{WATCHDOG}"),
        4096,
        3,
    );
    let oks = r.result.expect("smoke plan must recover");
    assert!(oks.iter().all(|&ok| ok), "smoke payloads must verify");
    assert!(r.checksum_detected > 0 && r.tunnel_retries > 0, "smoke plan must exercise recovery");
}
