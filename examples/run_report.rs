//! Render a deterministic Markdown run report from the three
//! observability exports of one run:
//!
//! ```sh
//! VSCC_TRACE=trace.json VSCC_METRICS=metrics.json VSCC_TIMESERIES=ts.json \
//!     cargo bench -p vscc-bench --bench fig6b_interdevice
//! cargo run --example run_report -- trace.json metrics.json ts.json > report.md
//! ```
//!
//! Sections: headline metrics, faults & recovery (rendered only when the
//! metrics export carries non-zero `pcie.fault.*` / `host.retry.*` /
//! `host.fallback.*` counters, i.e. a `VSCC_FAULTS` plan actually fired),
//! per-process critical-path attribution
//! (the phase columns sum to each process's end-of-run time exactly),
//! peak/mean utilization per sampled resource, and the windowed
//! tail-latency table. Identical exports render an identical report —
//! diffing two reports is a coarse first pass before reaching for
//! `metrics_diff`.
//!
//! With no arguments the example demos on an in-process sampled vDMA
//! ping-pong, rendering from the same JSON strings the env exports
//! would have written.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use des::critpath::{self, Attribution};
use des::obs::SamplerSpec;
use des::Sim;
use scc::geometry::CoreId;
use vscc::{CommScheme, VsccBuilder};

// ---- trace export parsing (the exact line format of
// `des::obs::chrome_trace_json_with_tracks`, not a general JSON parser) ----

/// First string value of `"key":"..."` in the line.
fn jstr<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let rest = &line[line.find(&pat)? + pat.len()..];
    rest.split('"').next()
}

/// First numeric value of `"key":N` in the line.
fn jnum(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let rest = &line[line.find(&pat)? + pat.len()..];
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

struct TraceReport {
    /// Per-process (pid order): name, end-of-run time, attribution over
    /// `[0, end]`.
    processes: Vec<(String, u64, Attribution)>,
    events: usize,
}

fn parse_trace(json: &str) -> TraceReport {
    let mut names: BTreeMap<u64, String> = BTreeMap::new();
    let mut ends: BTreeMap<u64, u64> = BTreeMap::new();
    // Counter-track pids reuse the run's name but hold only `ph:"C"`
    // samples; they have no spans to attribute, so keep them out of the
    // critical-path table.
    let mut has_spans: BTreeMap<u64, bool> = BTreeMap::new();
    // Open-span stacks per (pid, tid, kind) — spans nest like a call
    // stack within one actor, exactly as `des::critpath` matches them.
    let mut open: BTreeMap<(u64, u64, String), Vec<u64>> = BTreeMap::new();
    let mut spans: BTreeMap<u64, Vec<(u64, u64, critpath::Phase)>> = BTreeMap::new();
    let mut events = 0usize;
    for line in json.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with('{') || !line.ends_with('}') {
            continue;
        }
        let (Some(name), Some(ph), Some(pid)) =
            (jstr(line, "name"), jstr(line, "ph"), jnum(line, "pid"))
        else {
            continue;
        };
        if ph == "M" {
            if name == "process_name" {
                // The process name lives in the metadata args.
                if let Some(p) = line.find("\"args\":{\"name\":\"") {
                    let tail = &line[p + 16..];
                    names.insert(pid, tail.split('"').next().unwrap_or("?").to_string());
                }
            }
            continue;
        }
        events += 1;
        let ts = jnum(line, "ts").unwrap_or(0);
        let end = ends.entry(pid).or_insert(0);
        *end = (*end).max(ts);
        if ph != "C" {
            has_spans.insert(pid, true);
        }
        let Some(phase) = critpath::phase_of_kind(name) else { continue };
        let tid = jnum(line, "tid").unwrap_or(0);
        match ph {
            "B" => open.entry((pid, tid, name.to_string())).or_default().push(ts),
            "E" => {
                if let Some(t0) = open.get_mut(&(pid, tid, name.to_string())).and_then(Vec::pop) {
                    spans.entry(pid).or_default().push((t0, ts, phase));
                }
            }
            _ => {}
        }
    }
    // Unmatched begins attribute to their process's end of run.
    for ((pid, _, kind), stack) in open {
        let end = ends.get(&pid).copied().unwrap_or(0);
        let phase = critpath::phase_of_kind(&kind).expect("only vocabulary kinds are stacked");
        for t0 in stack {
            if t0 < end {
                spans.entry(pid).or_default().push((t0, end, phase));
            }
        }
    }
    let processes = names
        .iter()
        .filter(|(pid, _)| has_spans.get(pid).copied().unwrap_or(false))
        .map(|(pid, name)| {
            let end = ends.get(pid).copied().unwrap_or(0);
            let intervals = spans.get(pid).cloned().unwrap_or_default();
            (name.clone(), end, critpath::attribute(&intervals, 0, end))
        })
        .collect();
    TraceReport { processes, events }
}

// ---- metrics export parsing (counters only; the report's headline) ----

fn parse_counters(json: &str) -> Vec<(String, u64)> {
    json.lines()
        .filter_map(|line| {
            let line = line.trim().trim_end_matches(',');
            let rest = line.strip_prefix('"')?;
            let (name, body) = rest.split_once("\": ")?;
            if !body.contains("\"type\": \"counter\"") {
                return None;
            }
            let (_, tail) = body.split_once("\"value\": ")?;
            let v = tail.trim_end_matches('}').parse().ok()?;
            Some((name.to_string(), v))
        })
        .collect()
}

/// The counters of the fault/recovery plane (`VSCC_FAULTS` runs). They
/// are registered (at zero) even on clean runs, so the section gates on
/// at least one being non-zero, not on mere presence.
fn is_fault_counter(name: &str) -> bool {
    name.starts_with("pcie.fault.")
        || name.starts_with("host.retry.")
        || name.starts_with("host.fallback.")
        || name.starts_with("host.health.")
}

/// One health-FSM transition as exported in the Chrome trace
/// (`"cat":"health"` instants — DESIGN.md §5h).
struct HealthEvent {
    ts: u64,
    trigger: String,
    pair: (u64, u64),
    from: String,
    to: String,
}

/// Health-transition timeline from the trace export, in time order (the
/// export is already time-ordered per process).
fn parse_health(json: &str) -> Vec<HealthEvent> {
    json.lines()
        .filter_map(|line| {
            let line = line.trim().trim_end_matches(',');
            if !line.contains("\"cat\":\"health\"") {
                return None;
            }
            Some(HealthEvent {
                ts: jnum(line, "ts")?,
                trigger: jstr(line, "name")?.to_string(),
                pair: (jnum(line, "src_dev")?, jnum(line, "dst_dev")?),
                from: jstr(line, "from")?.to_string(),
                to: jstr(line, "to")?.to_string(),
            })
        })
        .collect()
}

/// The counters worth a headline row: traffic volume per fabric
/// resource plus the host's classification totals.
fn is_headline(name: &str) -> bool {
    (name.starts_with("pcie.") && name.ends_with(".bytes"))
        || (name.starts_with("scc.") && (name.ends_with(".reads") || name.ends_with(".writes")))
        || matches!(
            name,
            "host.routed_lines"
                | "host.vdma_ops"
                | "host.cache_updates"
                | "host.direct_writes"
                | "host.flag_forwards"
                | "rcce.poll.scans"
        )
}

// ---- time-series export parsing (same format `metrics_diff` reads) ----

struct TsSeries {
    name: String,
    kind: String,
    points: Vec<Vec<u64>>,
}

fn parse_timeseries(json: &str) -> (u64, Vec<TsSeries>) {
    let cadence = json
        .lines()
        .find_map(|l| l.trim().strip_prefix("\"cadence\": ").map(|v| v.trim_end_matches(',')))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let series = json
        .lines()
        .filter_map(|line| {
            let line = line.trim().trim_end_matches(',');
            let rest = line.strip_prefix('"')?;
            let (name, rest) = rest.split_once("\": ")?;
            let body = rest.strip_prefix('{')?.strip_suffix('}')?;
            let kind = body.split_once("\"kind\": \"")?.1.split('"').next()?;
            let pts = body.split_once("\"points\": [")?.1.strip_suffix(']')?;
            let mut points = Vec::new();
            if !pts.trim().is_empty() {
                for p in pts.split("], [") {
                    let p = p.trim_start_matches('[').trim_end_matches(']');
                    points.push(
                        p.split(", ").map(|v| v.trim().parse()).collect::<Result<_, _>>().ok()?,
                    );
                }
            }
            Some(TsSeries { name: name.to_string(), kind: kind.to_string(), points })
        })
        .collect();
    (cadence, series)
}

/// Mean of `vals` in tenths (deterministic integer arithmetic).
fn mean_tenths(vals: impl Iterator<Item = u64>) -> (u64, u64) {
    let (mut sum, mut n) = (0u64, 0u64);
    for v in vals {
        sum += v;
        n += 1;
    }
    if n == 0 {
        return (0, 0);
    }
    let t = (sum * 10 + n / 2) / n;
    (t / 10, t % 10)
}

// ---- report rendering ----

fn render_report(trace_json: &str, metrics_json: &str, ts_json: &str) -> String {
    let trace = parse_trace(trace_json);
    let counters = parse_counters(metrics_json);
    let (cadence, series) = parse_timeseries(ts_json);
    let mut md = String::from("# vSCC run report\n\n");
    let _ = writeln!(
        md,
        "{} trace process(es), {} events; sampler cadence {cadence} cycles, {} series.",
        trace.processes.len(),
        trace.events,
        series.len()
    );

    md.push_str("\n## Headline metrics\n\n| counter | value |\n|---|---:|\n");
    for (name, v) in counters.iter().filter(|(n, _)| is_headline(n)) {
        let _ = writeln!(md, "| `{name}` | {v} |");
    }

    // Rendered only for runs where the fault plane actually fired: the
    // counters exist (at zero) on clean runs too, so gate on activity.
    let faults: Vec<&(String, u64)> =
        counters.iter().filter(|(n, _)| is_fault_counter(n)).collect();
    if faults.iter().any(|(_, v)| *v > 0) {
        md.push_str("\n## Faults & recovery\n\n");
        let injected: u64 =
            faults.iter().filter(|(n, _)| n.starts_with("pcie.fault.")).map(|(_, v)| v).sum();
        let responses: u64 =
            faults.iter().filter(|(n, _)| !n.starts_with("pcie.fault.")).map(|(_, v)| v).sum();
        let giveups =
            faults.iter().find(|(n, _)| n == "host.retry.giveups").map(|(_, v)| *v).unwrap_or(0);
        let _ = writeln!(
            md,
            "A fault plan was active: {injected} injection(s), {responses} recovery \
             action(s), {giveups} giveup(s).\n"
        );
        md.push_str("| counter | value |\n|---|---:|\n");
        for (name, v) in faults {
            let _ = writeln!(md, "| `{name}` | {v} |");
        }

        // The self-healing plane's transition timeline (DESIGN.md §5h),
        // when the trace carries Health-category instants.
        let health = parse_health(trace_json);
        if !health.is_empty() {
            md.push_str(
                "\n### Health transitions\n\n| cycle | pair | transition | trigger |\n\
                 |---:|---|---|---|\n",
            );
            for e in &health {
                let _ = writeln!(
                    md,
                    "| {} | d{}→d{} | {} → {} | {} |",
                    e.ts, e.pair.0, e.pair.1, e.from, e.to, e.trigger
                );
            }
            // Final state per pair: replay of the timeline.
            let mut last: BTreeMap<(u64, u64), &str> = BTreeMap::new();
            for e in &health {
                last.insert(e.pair, &e.to);
            }
            md.push_str("\n### Final pair health\n\n| pair | state |\n|---|---|\n");
            for (pair, state) in &last {
                let _ = writeln!(md, "| d{}→d{} | {state} |", pair.0, pair.1);
            }
        }
    }

    md.push_str("\n## Critical path\n\n");
    md.push_str("Cycles of each process's `[0, end]` window attributed per phase\n");
    md.push_str("(columns sum to the end-of-run time exactly):\n\n```text\n");
    let rows: Vec<(String, Attribution)> = trace
        .processes
        .iter()
        .map(|(name, end, attr)| (format!("{name} (end {end})"), *attr))
        .collect();
    md.push_str(&critpath::render_table("process", &rows));
    md.push_str("```\n");

    md.push_str("\n## Utilization\n\n| resource | kind | mean | peak |\n|---|---|---:|---:|\n");
    for s in series.iter().filter(|s| s.kind == "busy") {
        let peak = s.points.iter().map(|p| p[1]).max().unwrap_or(0);
        let (m, t) = mean_tenths(s.points.iter().map(|p| p[1]));
        let _ = writeln!(md, "| `{}` | busy | {m}.{t} % | {peak} % |", s.name);
    }
    for s in series.iter().filter(|s| s.kind == "level") {
        let peak = s.points.iter().map(|p| p[1]).max().unwrap_or(0);
        let (m, t) = mean_tenths(s.points.iter().map(|p| p[1]));
        let _ = writeln!(md, "| `{}` | level | {m}.{t} | {peak} |", s.name);
    }

    md.push_str("\n## Windowed tail latency\n\n");
    md.push_str("Per-window (reset-on-sample) histogram quantiles; `p50`/`p99`\n");
    md.push_str("are the worst single window's interpolated quantiles:\n\n");
    md.push_str(
        "| series | active windows | count | worst p50 | worst p99 |\n|---|---:|---:|---:|---:|\n",
    );
    for s in series.iter().filter(|s| s.kind == "window") {
        let active = s.points.iter().filter(|p| p[1] > 0).count();
        let count: u64 = s.points.iter().map(|p| p[1]).sum();
        let p50 = s.points.iter().map(|p| p[2]).max().unwrap_or(0);
        let p99 = s.points.iter().map(|p| p[3]).max().unwrap_or(0);
        let _ = writeln!(md, "| `{}` | {active} | {count} | {p50} | {p99} |", s.name);
    }
    md
}

/// In-process fallback: one sampled vDMA ping-pong, exported to the same
/// three JSON strings the env exports would write.
fn demo_exports() -> (String, String, String) {
    let sim = Sim::new();
    let reg = des::obs::Registry::new();
    let v = VsccBuilder::new(&sim, 2)
        .scheme(CommScheme::LocalPutLocalGet)
        .metrics_registry(&reg)
        .trace_categories(&des::trace::Category::ALL)
        .build();
    let a = v.devices[0].global(CoreId(0));
    let b = v.devices[1].global(CoreId(0));
    let s = v.session_builder().participants(vec![a, b]).build();
    let ts = v.spawn_sampler(&SamplerSpec::every(des::obs::DEFAULT_CADENCE));
    s.run_app(|r| async move {
        if r.id() == 0 {
            r.send(&vec![0xC3u8; 8192], 1).await;
        } else {
            let mut buf = vec![0u8; 8192];
            r.recv(&mut buf, 0).await;
        }
    })
    .expect("demo run");
    ts.finish(sim.now());
    let trace = v.trace().clone();
    (
        des::obs::chrome_trace_json_with_tracks(&[("vdma-8K", &trace)], &[("vdma-8K", &ts)]),
        reg.snapshot().to_json(),
        ts.to_json(),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (trace_json, metrics_json, ts_json) = match args.as_slice() {
        [t, m, s] => {
            let raw = |p: &str| {
                std::fs::read_to_string(p).unwrap_or_else(|e| panic!("cannot read {p}: {e}"))
            };
            (raw(t), raw(m), raw(s))
        }
        [] => {
            eprintln!("(no files given; demoing on a sampled vDMA 8 KiB ping-pong)");
            demo_exports()
        }
        _ => {
            eprintln!("usage: run_report [trace.json metrics.json timeseries.json]");
            std::process::exit(2);
        }
    };
    print!("{}", render_report(&trace_json, &metrics_json, &ts_json));
}
