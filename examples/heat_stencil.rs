//! Heat-diffusion stencil across devices: real floating-point state moves
//! through the full communication stack every iteration, and physics
//! (heat conservation) validates the transport end to end.
//!
//! ```sh
//! cargo run --release --example heat_stencil [ranks] [iterations]
//! ```

use des::Sim;
use vscc::{CommScheme, VsccBuilder};
use vscc_apps::stencil::{initial_heat, run_stencil, StencilConfig};

fn main() {
    let ranks: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let iterations: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(50);

    let sim = Sim::new();
    let devices = ranks.div_ceil(48).max(2) as u8; // force >= 2 to cross the tunnel
    let system = VsccBuilder::new(&sim, devices).scheme(CommScheme::LocalPutLocalGet).build();
    // Spread the strips over both devices so halos cross the tunnel.
    let per_dev = ranks.div_ceil(devices as usize);
    let session = system.session_builder().cores_per_device(per_dev).max_ranks(ranks).build();

    let cfg = StencilConfig { width: 64, height: 64.max(ranks * 4), iterations };
    let cfg = StencilConfig {
        height: cfg.height - cfg.height % ranks, // divide evenly
        ..cfg
    };
    println!(
        "2-D Jacobi heat stencil: {}x{} grid, {} ranks on {} devices, {} iterations",
        cfg.width, cfg.height, ranks, devices, cfg.iterations
    );

    let res = run_stencil(&session, &cfg).expect("stencil run");
    let expect = initial_heat(&cfg);
    println!("total heat {:.3} (initial {expect:.3}) — conserved: {}", res.total_heat, {
        (res.total_heat - expect).abs() < 1e-6
    });
    println!("final max residual: {:.6}", res.residual);
    println!(
        "simulated {:.2} ms; tunnel moved {} KiB",
        des::time::CORE_FREQ.ns(res.cycles) as f64 / 1e6,
        system.host.fabric.ports.iter().map(|p| p.total_bytes()).sum::<u64>() / 1024
    );
    assert!((res.total_heat - expect).abs() < 1e-6, "heat must be conserved");
}
