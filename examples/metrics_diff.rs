//! Diff two metrics exports to bisect a determinism bug.
//!
//! ```sh
//! VSCC_METRICS=a.json cargo bench -p vscc-bench --bench fig6b_interdevice
//! # ... change something ...
//! VSCC_METRICS=b.json cargo bench -p vscc-bench --bench fig6b_interdevice
//! cargo run --example metrics_diff -- a.json b.json
//! ```
//!
//! With no arguments the example demos the workflow on two in-process
//! runs (vDMA vs software-cache ping-pong) and prints their delta.
//!
//! Both sides must be `VSCC_METRICS` exports ([`des::obs::Snapshot`]'s
//! own deterministic JSON); the parser below reads exactly that format
//! line by line — it is not a general JSON parser.

use des::obs::{MetricValue, Snapshot};
use des::Sim;
use scc::geometry::CoreId;
use vscc::{CommScheme, VsccBuilder};

/// Parse one `"name": {"type": ..., ...}` metric line of the export.
fn parse_line(line: &str) -> Option<(String, MetricValue)> {
    let line = line.trim().trim_end_matches(',');
    let rest = line.strip_prefix('"')?;
    let (name, rest) = rest.split_once("\": ")?;
    let body = rest.strip_prefix('{')?.strip_suffix('}')?;
    let field = |key: &str| -> Option<&str> {
        let (_, tail) = body.split_once(&format!("\"{key}\": "))?;
        Some(tail.split([',', ']']).next().unwrap_or(tail).trim())
    };
    let int = |key: &str| field(key).and_then(|v| v.parse::<u64>().ok());
    let value = match field("type")? {
        "\"counter\"" => MetricValue::Counter { value: int("value")? },
        "\"gauge\"" => MetricValue::Gauge {
            value: field("value")?.parse().ok()?,
            high_watermark: field("high_watermark")?.parse().ok()?,
        },
        "\"histogram\"" => {
            let (_, tail) = body.split_once("\"buckets\": [")?;
            let list = tail.split(']').next()?;
            let buckets = if list.trim().is_empty() {
                Vec::new()
            } else {
                list.split(", ").map(|b| b.trim().parse::<u64>()).collect::<Result<_, _>>().ok()?
            };
            MetricValue::Histogram {
                count: int("count")?,
                sum: field("sum")?.parse().ok()?,
                max: int("max")?,
                p50: int("p50")?,
                p99: int("p99")?,
                buckets,
            }
        }
        _ => return None,
    };
    Some((name.to_string(), value))
}

/// Read a whole `VSCC_METRICS` export back into a [`Snapshot`].
fn parse_snapshot(json: &str) -> Snapshot {
    let entries = json.lines().filter_map(parse_line).collect();
    Snapshot { entries }
}

/// In-process fallback: one traced ping-pong per scheme.
fn demo_snapshot(scheme: CommScheme) -> Snapshot {
    let sim = Sim::new();
    let v = VsccBuilder::new(&sim, 2).scheme(scheme).build();
    let a = v.devices[0].global(CoreId(0));
    let b = v.devices[1].global(CoreId(0));
    let s = v.session_builder().participants(vec![a, b]).build();
    s.run_app(|r| async move {
        if r.id() == 0 {
            r.send(&vec![1u8; 8192], 1).await;
        } else {
            let mut buf = vec![0u8; 8192];
            r.recv(&mut buf, 0).await;
        }
    })
    .expect("demo run");
    v.metrics().snapshot()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (label_a, a, label_b, b) = match args.as_slice() {
        [pa, pb] => {
            let read = |p: &str| {
                let json =
                    std::fs::read_to_string(p).unwrap_or_else(|e| panic!("cannot read {p}: {e}"));
                let snap = parse_snapshot(&json);
                assert!(
                    !snap.entries.is_empty(),
                    "{p} holds no metrics (not a VSCC_METRICS export?)"
                );
                snap
            };
            (pa.clone(), read(pa), pb.clone(), read(pb))
        }
        [] => {
            println!("(no files given; demoing on vDMA vs sw-cache ping-pong)\n");
            (
                "local put / local get".into(),
                demo_snapshot(CommScheme::LocalPutLocalGet),
                "local put / remote get".into(),
                demo_snapshot(CommScheme::LocalPutRemoteGet),
            )
        }
        _ => {
            eprintln!("usage: metrics_diff [old.json new.json]");
            std::process::exit(2);
        }
    };

    let diff = a.diff(&b);
    if diff.is_empty() {
        println!("snapshots are identical ({} metrics)", a.entries.len());
        return;
    }
    println!(
        "{} changed, {} added, {} removed ({label_a} -> {label_b}):\n",
        diff.changed.len(),
        diff.added.len(),
        diff.removed.len()
    );
    print!("{}", diff.render_table());
}
