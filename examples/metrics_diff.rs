//! Diff two metrics (or time-series) exports to bisect a determinism bug.
//!
//! ```sh
//! VSCC_METRICS=a.json cargo bench -p vscc-bench --bench fig6b_interdevice
//! # ... change something ...
//! VSCC_METRICS=b.json cargo bench -p vscc-bench --bench fig6b_interdevice
//! cargo run --example metrics_diff -- a.json b.json
//! ```
//!
//! Two `VSCC_TIMESERIES` exports are detected automatically and diffed
//! per series: the report names the first divergent sample (index and
//! virtual timestamp), which bisects *when* two runs first disagreed,
//! not just that their end-of-run totals differ.
//!
//! With no arguments the example demos the workflow on two in-process
//! runs (vDMA vs software-cache ping-pong) and prints their delta.
//!
//! Both sides must be `VSCC_METRICS` exports ([`des::obs::Snapshot`]'s
//! own deterministic JSON) or both `VSCC_TIMESERIES` exports; the
//! parsers below read exactly those formats line by line — they are not
//! general JSON parsers.

use des::obs::{MetricValue, Snapshot};
use des::Sim;
use scc::geometry::CoreId;
use vscc::{CommScheme, VsccBuilder};

/// Parse one `"name": {"type": ..., ...}` metric line of the export.
fn parse_line(line: &str) -> Option<(String, MetricValue)> {
    let line = line.trim().trim_end_matches(',');
    let rest = line.strip_prefix('"')?;
    let (name, rest) = rest.split_once("\": ")?;
    let body = rest.strip_prefix('{')?.strip_suffix('}')?;
    let field = |key: &str| -> Option<&str> {
        let (_, tail) = body.split_once(&format!("\"{key}\": "))?;
        Some(tail.split([',', ']']).next().unwrap_or(tail).trim())
    };
    let int = |key: &str| field(key).and_then(|v| v.parse::<u64>().ok());
    let value = match field("type")? {
        "\"counter\"" => MetricValue::Counter { value: int("value")? },
        "\"gauge\"" => MetricValue::Gauge {
            value: field("value")?.parse().ok()?,
            high_watermark: field("high_watermark")?.parse().ok()?,
        },
        "\"histogram\"" => {
            let (_, tail) = body.split_once("\"buckets\": [")?;
            let list = tail.split(']').next()?;
            let buckets = if list.trim().is_empty() {
                Vec::new()
            } else {
                list.split(", ").map(|b| b.trim().parse::<u64>()).collect::<Result<_, _>>().ok()?
            };
            MetricValue::Histogram {
                count: int("count")?,
                sum: field("sum")?.parse().ok()?,
                max: int("max")?,
                p50: int("p50")?,
                p99: int("p99")?,
                buckets,
            }
        }
        _ => return None,
    };
    Some((name.to_string(), value))
}

/// Read a whole `VSCC_METRICS` export back into a [`Snapshot`].
fn parse_snapshot(json: &str) -> Snapshot {
    let entries = json.lines().filter_map(parse_line).collect();
    Snapshot { entries }
}

/// A `VSCC_TIMESERIES` export leads with its cadence header.
fn is_timeseries_export(json: &str) -> bool {
    json.lines().nth(1).map(|l| l.trim_start().starts_with("\"cadence\":")).unwrap_or(false)
}

/// One parsed series line of a `VSCC_TIMESERIES` export: the points are
/// kept as raw number tuples (`[t, v]` or `[t, count, p50, p99]`) — a
/// diff only needs equality and the timestamp.
struct TsSeries {
    name: String,
    kind: String,
    points: Vec<Vec<i64>>,
}

fn parse_ts_line(line: &str) -> Option<TsSeries> {
    let line = line.trim().trim_end_matches(',');
    let rest = line.strip_prefix('"')?;
    let (name, rest) = rest.split_once("\": ")?;
    let body = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (_, kind_tail) = body.split_once("\"kind\": \"")?;
    let kind = kind_tail.split('"').next()?;
    let (_, pts) = body.split_once("\"points\": [")?;
    let pts = pts.strip_suffix(']')?;
    let mut points = Vec::new();
    if !pts.trim().is_empty() {
        for p in pts.split("], [") {
            let p = p.trim_start_matches('[').trim_end_matches(']');
            let vals: Vec<i64> =
                p.split(", ").map(|v| v.trim().parse()).collect::<Result<_, _>>().ok()?;
            points.push(vals);
        }
    }
    Some(TsSeries { name: name.to_string(), kind: kind.to_string(), points })
}

fn parse_timeseries(json: &str) -> Vec<TsSeries> {
    json.lines()
        .filter(|l| l.trim_start().starts_with("\"") && l.contains("\"points\":"))
        .filter_map(parse_ts_line)
        .collect()
}

/// Per-series diff of two time-series exports: report the first
/// divergent sample of each series with its index and virtual
/// timestamp. Returns the number of differing series.
fn diff_timeseries(label_a: &str, a: &[TsSeries], label_b: &str, b: &[TsSeries]) -> usize {
    let mut differing = 0;
    let index_b: std::collections::HashMap<&str, &TsSeries> =
        b.iter().map(|s| (s.name.as_str(), s)).collect();
    for sa in a {
        let Some(sb) = index_b.get(sa.name.as_str()) else {
            println!("  {:<44} only in {label_a}", sa.name);
            differing += 1;
            continue;
        };
        if sa.kind != sb.kind {
            println!("  {:<44} kind {} -> {}", sa.name, sa.kind, sb.kind);
            differing += 1;
            continue;
        }
        match sa.points.iter().zip(&sb.points).position(|(pa, pb)| pa != pb) {
            Some(i) => {
                let t = sa.points[i].first().copied().unwrap_or(0);
                println!(
                    "  {:<44} first divergent sample #{i} at t={t}: {:?} -> {:?}",
                    sa.name, sa.points[i], sb.points[i]
                );
                differing += 1;
            }
            None if sa.points.len() != sb.points.len() => {
                let i = sa.points.len().min(sb.points.len());
                println!(
                    "  {:<44} common prefix equal; sample count {} -> {} (diverges at #{i})",
                    sa.name,
                    sa.points.len(),
                    sb.points.len()
                );
                differing += 1;
            }
            None => {}
        }
    }
    for sb in b {
        if !a.iter().any(|s| s.name == sb.name) {
            println!("  {:<44} only in {label_b}", sb.name);
            differing += 1;
        }
    }
    differing
}

/// In-process fallback: one traced ping-pong per scheme.
fn demo_snapshot(scheme: CommScheme) -> Snapshot {
    let sim = Sim::new();
    let v = VsccBuilder::new(&sim, 2).scheme(scheme).build();
    let a = v.devices[0].global(CoreId(0));
    let b = v.devices[1].global(CoreId(0));
    let s = v.session_builder().participants(vec![a, b]).build();
    s.run_app(|r| async move {
        if r.id() == 0 {
            r.send(&vec![1u8; 8192], 1).await;
        } else {
            let mut buf = vec![0u8; 8192];
            r.recv(&mut buf, 0).await;
        }
    })
    .expect("demo run");
    v.metrics().snapshot()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (label_a, a, label_b, b) = match args.as_slice() {
        [pa, pb] => {
            let raw = |p: &str| {
                std::fs::read_to_string(p).unwrap_or_else(|e| panic!("cannot read {p}: {e}"))
            };
            let (ja, jb) = (raw(pa), raw(pb));
            match (is_timeseries_export(&ja), is_timeseries_export(&jb)) {
                (true, true) => {
                    let (sa, sb) = (parse_timeseries(&ja), parse_timeseries(&jb));
                    assert!(!sa.is_empty(), "{pa} holds no series");
                    assert!(!sb.is_empty(), "{pb} holds no series");
                    println!("time-series diff ({pa} -> {pb}):\n");
                    let n = diff_timeseries(pa, &sa, pb, &sb);
                    if n == 0 {
                        println!("  exports are identical ({} series)", sa.len());
                    } else {
                        println!("\n{n} series differ");
                        std::process::exit(1);
                    }
                    return;
                }
                (false, false) => {}
                _ => {
                    eprintln!("cannot diff a VSCC_METRICS export against a VSCC_TIMESERIES one");
                    std::process::exit(2);
                }
            }
            let read = |json: &str, p: &str| {
                let snap = parse_snapshot(json);
                assert!(
                    !snap.entries.is_empty(),
                    "{p} holds no metrics (not a VSCC_METRICS export?)"
                );
                snap
            };
            (pa.clone(), read(&ja, pa), pb.clone(), read(&jb, pb))
        }
        [] => {
            println!("(no files given; demoing on vDMA vs sw-cache ping-pong)\n");
            (
                "local put / local get".into(),
                demo_snapshot(CommScheme::LocalPutLocalGet),
                "local put / remote get".into(),
                demo_snapshot(CommScheme::LocalPutRemoteGet),
            )
        }
        _ => {
            eprintln!("usage: metrics_diff [old.json new.json]");
            std::process::exit(2);
        }
    };

    let diff = a.diff(&b);
    if diff.is_empty() {
        println!("snapshots are identical ({} metrics)", a.entries.len());
        return;
    }
    println!(
        "{} changed, {} added, {} removed ({label_a} -> {label_b}):\n",
        diff.changed.len(),
        diff.added.len(),
        diff.removed.len()
    );
    print!("{}", diff.render_table());
}
