//! Quickstart: build a two-device vSCC system, run an RCCE program on it,
//! and look at what the communication task did.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use des::Sim;
use vscc::{CommScheme, VsccBuilder};

fn main() {
    // A deterministic simulated world.
    let sim = Sim::new();

    // Two SCC devices (2 x 48 cores) coupled through one host, using the
    // paper's best scheme: local put / local get via the virtual DMA
    // controller.
    let system = VsccBuilder::new(&sim, 2).scheme(CommScheme::LocalPutLocalGet).build();
    println!(
        "built a vSCC with {} cores on {} devices (scheme: {})",
        system.alive_cores(),
        system.devices.len(),
        system.scheme.name()
    );

    // An RCCE session over four ranks: two per device, so rank 0 <-> 2 is
    // an inter-device pair and rank 0 <-> 1 stays on-chip.
    let session = system.session_builder().cores_per_device(2).build();

    // Every rank runs this async program (one UE per core).
    let results = session
        .run_app(|rcce| async move {
            let me = rcce.id();
            let n = rcce.num_ues();
            // Ring shift: send my rank around the ring, receive my
            // predecessor's.
            let next = (me + 1) % n;
            let prev = (me + n - 1) % n;
            let req = rcce.isend(vec![me as u8; 1024], next);
            let got = rcce.recv_vec(1024, prev).await;
            req.wait().await;
            assert_eq!(got, vec![prev as u8; 1024]);

            // A global reduction for good measure.
            let sum = rcce.allreduce_f64(me as f64, rcce::collectives::Op::Sum).await;
            rcce.barrier().await;
            (me, sum, rcce.now())
        })
        .expect("app run");

    for (me, sum, at) in &results {
        println!("rank {me}: allreduce sum = {sum}, finished at {at} cycles");
    }
    println!(
        "\nsimulated time: {} cycles = {:.1} us at 533 MHz",
        sim.now(),
        des::time::CORE_FREQ.ns(sim.now()) as f64 / 1000.0
    );
    println!(
        "communication task: {} vDMA ops, {} flag forwards, {} direct writes",
        system.host.stats.vdma_ops.get(),
        system.host.stats.flag_forwards.get(),
        system.host.stats.direct_writes.get()
    );
    println!(
        "traffic crossing the PCIe tunnel: {} bytes",
        system.host.fabric.ports.iter().map(|p| p.total_bytes()).sum::<u64>()
    );
}
