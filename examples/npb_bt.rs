//! Run the NPB BT benchmark on a vSCC system and show the Fig. 8-style
//! traffic matrix.
//!
//! ```sh
//! cargo run --release --example npb_bt [class] [ranks]
//! # e.g. cargo run --release --example npb_bt W 16
//! ```

use des::Sim;
use vscc::{CommScheme, VsccBuilder};
use vscc_apps::npb::{run_bt, BtClass, BtConfig};
use vscc_apps::traffic::TrafficMatrix;

fn main() {
    let class = match std::env::args().nth(1).as_deref() {
        Some("S") => BtClass::S,
        Some("A") => BtClass::A,
        Some("B") => BtClass::B,
        Some("C") => BtClass::C,
        _ => BtClass::W,
    };
    let ranks: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(16);

    let sim = Sim::new();
    let devices = ranks.div_ceil(48).max(1) as u8;
    let system = VsccBuilder::new(&sim, devices).scheme(CommScheme::LocalPutLocalGet).build();
    let session = system.session_with_ranks(ranks);

    let cfg = BtConfig::new(class, ranks);
    println!(
        "NPB BT class {} ({}^3 grid), {} ranks on {} device(s), q = {}, cell edge {}",
        class.name(),
        class.n(),
        ranks,
        devices,
        cfg.q(),
        cfg.cell_edge()
    );
    let res = run_bt(&session, &cfg).expect("BT run");
    println!(
        "verified: {} | {:.2} GFLOP/s over {} timed iterations ({} messages, {} cycles)",
        res.verified, res.gflops, cfg.measured, res.messages, res.cycles
    );

    let m = TrafficMatrix::capture(&session)
        .scaled(class.full_iterations() as u64, (cfg.warmup + cfg.measured) as u64);
    println!("\ntraffic matrix projected to the full {} iterations:", class.full_iterations());
    println!("{}", m.render());
}
