//! Lint a `VSCC_TRACE` Chrome-trace export for structural invariants:
//!
//! * timestamps are monotone per track — per `(pid, counter name)` for
//!   `ph:"C"` counter samples, and per `(pid, tid)` for span End /
//!   Instant events (which are always recorded at the current virtual
//!   time; Begins may legitimately step back, because wire-occupancy
//!   spans are opened retroactively once the arrival time is known);
//! * every `ph:"E"` closes a matching open `ph:"B"` of the same kind on
//!   its track with `begin ts <= end ts`, and no span is left open at
//!   end of export;
//! * every flow arrow that starts (`ph:"s"`) also finishes (`ph:"f"`),
//!   and vice versa;
//! * counter-track sample values are numeric and non-negative.
//!
//! A `VSCC_TIMESERIES` export (auto-detected by its `"cadence":` header
//! line) is linted against the sampler's invariants instead:
//!
//! * series appear sorted by name (the exporter's deterministic order);
//! * sample timestamps never step back within a series;
//! * `busy` tracks are integer percents bounded to [0, 100];
//! * `rate` and `window` values are non-negative integers.
//!
//! ```sh
//! VSCC_TRACE=trace.json cargo bench -p vscc-bench --bench fig6b_interdevice
//! cargo run --example trace_lint -- trace.json
//! ```
//!
//! With no arguments the example lints a self-generated export (a
//! sampled 8 KiB fig6b-style ping-pong with counter tracks merged) plus
//! the same run's time-series export, so `scripts/check.sh` can gate
//! both exporters without a bench run.
//! Exit status: 0 clean, 1 violations found.

use std::collections::{BTreeMap, BTreeSet};

use des::obs::SamplerSpec;
use des::Sim;
use scc::geometry::CoreId;
use vscc::{CommScheme, VsccBuilder};

/// First string value of `"key":"..."` in the line.
fn jstr<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let rest = &line[line.find(&pat)? + pat.len()..];
    rest.split('"').next()
}

/// First numeric value of `"key":N` in the line.
fn jnum(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let rest = &line[line.find(&pat)? + pat.len()..];
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn lint(json: &str) -> Vec<String> {
    let mut violations = Vec::new();
    // Last timestamp per span track (pid, tid) and per counter series
    // (pid, name).
    let mut span_last: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    let mut counter_last: BTreeMap<(u64, String), u64> = BTreeMap::new();
    // Open-span stacks per (pid, tid, kind) — the same matching
    // discipline `des::critpath` uses, tolerant of retroactive Begins.
    let mut open: BTreeMap<(u64, u64, String), Vec<u64>> = BTreeMap::new();
    let mut flow_starts: BTreeSet<u64> = BTreeSet::new();
    let mut flow_finishes: BTreeSet<u64> = BTreeSet::new();
    let mut events = 0usize;
    let mut counters = 0usize;
    for (lineno, line) in json.lines().enumerate() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with('{') || !line.ends_with('}') {
            continue;
        }
        let Some(ph) = jstr(line, "ph") else { continue };
        if ph == "M" {
            continue;
        }
        events += 1;
        let pid = jnum(line, "pid").unwrap_or(0);
        let tid = jnum(line, "tid").unwrap_or(0);
        let Some(ts) = jnum(line, "ts") else {
            violations.push(format!("line {}: event without numeric ts", lineno + 1));
            continue;
        };
        match ph {
            "B" | "E" | "i" => {
                let name = jstr(line, "name").unwrap_or("?");
                if ph != "B" {
                    // Ends and instants record at the current virtual
                    // time, so per actor they must never step back.
                    let last = span_last.entry((pid, tid)).or_insert(0);
                    if ts < *last {
                        violations.push(format!(
                            "line {}: pid {pid} tid {tid}: ts {ts} steps back from {}",
                            lineno + 1,
                            *last
                        ));
                    }
                    *last = (*last).max(ts);
                }
                match ph {
                    "B" => open.entry((pid, tid, name.to_string())).or_default().push(ts),
                    "E" => match open
                        .get_mut(&(pid, tid, name.to_string()))
                        .and_then(Vec::pop)
                    {
                        Some(t0) if t0 <= ts => {}
                        Some(t0) => violations.push(format!(
                            "line {}: pid {pid} tid {tid}: \"{name}\" ends at {ts} before its begin {t0}",
                            lineno + 1
                        )),
                        None => violations.push(format!(
                            "line {}: pid {pid} tid {tid}: E \"{name}\" without open B",
                            lineno + 1
                        )),
                    },
                    _ => {}
                }
            }
            "s" | "t" | "f" => {
                let Some(id) = jnum(line, "id") else {
                    violations.push(format!("line {}: flow event without id", lineno + 1));
                    continue;
                };
                if ph == "s" {
                    flow_starts.insert(id);
                }
                if ph == "f" {
                    flow_finishes.insert(id);
                }
            }
            "C" => {
                counters += 1;
                let name = jstr(line, "name").unwrap_or("?").to_string();
                let last = counter_last.entry((pid, name.clone())).or_insert(0);
                if ts < *last {
                    violations.push(format!(
                        "line {}: counter \"{name}\": ts {ts} steps back from {}",
                        lineno + 1,
                        *last
                    ));
                }
                *last = (*last).max(ts);
                // Every args value must be a non-negative number. The
                // exporter writes integers only, so `-` or a non-digit
                // value byte is a violation.
                let Some(p) = line.find("\"args\":{") else {
                    violations
                        .push(format!("line {}: counter \"{name}\" without args", lineno + 1));
                    continue;
                };
                let body = line[p + 8..].trim_end_matches('}');
                for pair in body.split(',') {
                    let Some((_, v)) = pair.split_once(':') else { continue };
                    if v.is_empty() || !v.bytes().all(|b| b.is_ascii_digit()) {
                        violations.push(format!(
                            "line {}: counter \"{name}\": non-numeric or negative value {v}",
                            lineno + 1
                        ));
                    }
                }
            }
            other => {
                violations.push(format!("line {}: unknown phase \"{other}\"", lineno + 1));
            }
        }
    }
    for ((pid, tid, kind), stack) in open {
        for t0 in stack {
            violations.push(format!("pid {pid} tid {tid}: \"{kind}\" opened at {t0} never closed"));
        }
    }
    for id in flow_starts.difference(&flow_finishes) {
        violations.push(format!("flow {id}: started (ph:\"s\") but never finished (ph:\"f\")"));
    }
    for id in flow_finishes.difference(&flow_starts) {
        violations.push(format!("flow {id}: finished (ph:\"f\") but never started (ph:\"s\")"));
    }
    if events == 0 {
        violations.push("no events found (not a VSCC_TRACE export?)".to_string());
    }
    println!(
        "linted {events} events ({counters} counter samples, {} counter series, {} flows)",
        counter_last.len(),
        flow_starts.union(&flow_finishes).count()
    );
    violations
}

/// Whether `json` is a `VSCC_TIMESERIES` export: its second line is the
/// `"cadence":` header (a Chrome trace opens with `"traceEvents"`).
fn is_timeseries_export(json: &str) -> bool {
    json.lines().nth(1).is_some_and(|l| l.trim_start().starts_with("\"cadence\":"))
}

/// String value of `"key": "..."` with the timeseries exporter's space
/// after the colon.
fn jstr_spaced<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let rest = &line[line.find(&pat)? + pat.len()..];
    rest.split('"').next()
}

/// Numeric value of `"key": N` (tolerating the timeseries exporter's
/// space after the colon); `-` prefixes are accepted for gauge levels.
fn jnum_spaced(line: &str, key: &str) -> Option<i64> {
    let pat = format!("\"{key}\":");
    let rest = line[line.find(&pat)? + pat.len()..].trim_start();
    let end = rest
        .char_indices()
        .find(|&(i, c)| !(c.is_ascii_digit() || (i == 0 && c == '-')))
        .map(|(i, _)| i)
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Lint a `VSCC_TIMESERIES` export (see module docs for the checks).
fn lint_timeseries(json: &str) -> Vec<String> {
    let mut violations = Vec::new();
    let mut names: Vec<String> = Vec::new();
    let mut points_total = 0usize;
    if json.lines().nth(1).and_then(|l| jnum_spaced(l, "cadence")).is_none() {
        violations.push("missing or non-numeric \"cadence\" header".to_string());
    }
    for (lineno, line) in json.lines().enumerate() {
        let line = line.trim().trim_end_matches(',');
        // Series lines look like: "name": {"kind": "rate", "points": [...]}
        let Some(kind) = jstr_spaced(line, "kind") else { continue };
        let Some(name) = line.strip_prefix('"').and_then(|r| r.split('"').next()) else {
            continue;
        };
        names.push(name.to_string());
        let Some(p) = line.find("\"points\": [") else {
            violations.push(format!("line {}: series \"{name}\" without points", lineno + 1));
            continue;
        };
        let body = line[p + 11..].trim_end_matches(['}', ']']);
        let mut last_t: Option<i64> = None;
        for tuple in body.split("], [") {
            let tuple = tuple.trim_matches(['[', ']', ' ']);
            if tuple.is_empty() {
                continue;
            }
            points_total += 1;
            let fields: Vec<Option<i64>> =
                tuple.split(", ").map(|f| f.parse::<i64>().ok()).collect();
            let Some(&Some(t)) = fields.first() else {
                violations.push(format!(
                    "line {}: series \"{name}\": non-numeric timestamp in [{tuple}]",
                    lineno + 1
                ));
                continue;
            };
            if last_t.is_some_and(|prev| t < prev) {
                violations.push(format!(
                    "line {}: series \"{name}\": ts {t} steps back from {}",
                    lineno + 1,
                    last_t.unwrap()
                ));
            }
            last_t = Some(t);
            let values = &fields[1..];
            if values.is_empty() || values.iter().any(Option::is_none) {
                violations.push(format!(
                    "line {}: series \"{name}\": non-numeric value in [{tuple}]",
                    lineno + 1
                ));
                continue;
            }
            match kind {
                "busy" => {
                    if values.iter().any(|v| !(0..=100).contains(&v.unwrap())) {
                        violations.push(format!(
                            "line {}: busy series \"{name}\": percent outside [0, 100] in [{tuple}]",
                            lineno + 1
                        ));
                    }
                }
                "rate" | "window" => {
                    if values.iter().any(|v| v.unwrap() < 0) {
                        violations.push(format!(
                            "line {}: {kind} series \"{name}\": negative value in [{tuple}]",
                            lineno + 1
                        ));
                    }
                }
                // Gauge levels are legitimately signed.
                "level" => {}
                other => violations.push(format!(
                    "line {}: series \"{name}\": unknown kind \"{other}\"",
                    lineno + 1
                )),
            }
        }
    }
    if !names.windows(2).all(|w| w[0] <= w[1]) {
        violations.push("series are not sorted by name".to_string());
    }
    if names.is_empty() {
        violations.push("no series found (not a VSCC_TIMESERIES export?)".to_string());
    }
    println!("linted {} series ({points_total} samples)", names.len());
    violations
}

/// Self-generated export for the no-argument mode: a sampled 8 KiB
/// fig6b-style ping-pong with its counter tracks merged in.
fn demo_export() -> (String, String) {
    let sim = Sim::new();
    let reg = des::obs::Registry::new();
    let v = VsccBuilder::new(&sim, 2)
        .scheme(CommScheme::LocalPutLocalGet)
        .metrics_registry(&reg)
        .trace_categories(&des::trace::Category::ALL)
        .build();
    let a = v.devices[0].global(CoreId(0));
    let b = v.devices[1].global(CoreId(0));
    let s = v.session_builder().participants(vec![a, b]).build();
    let ts = v.spawn_sampler(&SamplerSpec::every(des::obs::DEFAULT_CADENCE));
    s.run_app(|r| async move {
        if r.id() == 0 {
            r.send(&vec![0x5Au8; 8192], 1).await;
        } else {
            let mut buf = vec![0u8; 8192];
            r.recv(&mut buf, 0).await;
        }
    })
    .expect("demo run");
    ts.finish(sim.now());
    let trace = v.trace().clone();
    let chrome =
        des::obs::chrome_trace_json_with_tracks(&[("vdma-8K", &trace)], &[("vdma-8K", &ts)]);
    (chrome, ts.to_json())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // (label, export) pairs to lint; each dispatches on its own format.
    let inputs: Vec<(String, String)> = match args.as_slice() {
        [p] => vec![(
            p.clone(),
            std::fs::read_to_string(p).unwrap_or_else(|e| panic!("cannot read {p}: {e}")),
        )],
        [] => {
            println!("(no file given; linting a self-generated sampled ping-pong export)");
            let (chrome, ts) = demo_export();
            vec![
                ("self-generated trace export".to_string(), chrome),
                ("self-generated time-series export".to_string(), ts),
            ]
        }
        _ => {
            eprintln!("usage: trace_lint [trace.json | timeseries.json]");
            std::process::exit(2);
        }
    };
    let mut total = 0usize;
    for (label, json) in &inputs {
        let violations =
            if is_timeseries_export(json) { lint_timeseries(json) } else { lint(json) };
        if violations.is_empty() {
            println!("{label}: clean");
        } else {
            for v in &violations {
                println!("  {v}");
            }
            println!("{label}: {} violation(s)", violations.len());
            total += violations.len();
        }
    }
    if total > 0 {
        std::process::exit(1);
    }
}
