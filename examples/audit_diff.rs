//! Diff two `VSCC_AUDIT` exports and report where they first diverge.
//!
//! ```sh
//! VSCC_AUDIT=a.json cargo bench -p vscc-bench --bench fig6b_interdevice
//! VSCC_AUDIT=b.json cargo bench -p vscc-bench --bench fig6b_interdevice
//! cargo run --example audit_diff -- a.json b.json
//! ```
//!
//! Identical exports exit 0. Diverging exports exit 1 and name the first
//! divergent *epoch* (chain hashes differ) — or, when both exports carry
//! a `VSCC_AUDIT_ZOOM` window, the first divergent *decision* (kind,
//! operands, cycle), which pinpoints the exact scheduler step where two
//! runs parted ways. The full bisection is therefore two reruns: diff
//! the plain exports for the epoch, re-run both zoomed on it, diff again
//! for the decision.
//!
//! With no arguments the example audits a self-generated inter-device
//! ping-pong twice and diffs the two exports (they must match), so
//! `scripts/check.sh` can gate the audit plane without a bench run.
//! Exit status: 0 identical, 1 divergent, 2 usage or parse error.

use des::audit;
use vscc::CommScheme;
use vscc_apps::pingpong;

fn demo_export() -> String {
    let (_, audit) = pingpong::interdevice_audited(
        CommScheme::LocalPutLocalGet,
        8192,
        1,
        audit::DEFAULT_EPOCH_CYCLES,
        None,
        None,
    );
    audit.to_json()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (labels, a, b) = match args.as_slice() {
        [a, b] => {
            let read = |p: &str| {
                std::fs::read_to_string(p).unwrap_or_else(|e| {
                    eprintln!("cannot read {p}: {e}");
                    std::process::exit(2);
                })
            };
            ((a.clone(), b.clone()), read(a), read(b))
        }
        [] => {
            println!("(no files given; diffing two self-generated audited ping-pong runs)");
            (("run A".to_string(), "run B".to_string()), demo_export(), demo_export())
        }
        _ => {
            eprintln!("usage: audit_diff <a.json> <b.json>");
            std::process::exit(2);
        }
    };
    let parse = |label: &str, json: &str| {
        audit::parse_export(json).unwrap_or_else(|e| {
            eprintln!("{label}: {e}");
            std::process::exit(2);
        })
    };
    let pa = parse(&labels.0, &a);
    let pb = parse(&labels.1, &b);
    println!(
        "{}: {} epochs, {} zoomed decisions; {}: {} epochs, {} zoomed decisions",
        labels.0,
        pa.rows.len(),
        pa.zoom.len(),
        labels.1,
        pb.rows.len(),
        pb.zoom.len()
    );
    match audit::diff(&pa, &pb) {
        Ok(None) => {
            println!("identical: final chain {}", pa.final_chain);
        }
        Ok(Some(divergence)) => {
            println!("{divergence}");
            if matches!(divergence, audit::Divergence::Epoch { .. }) && pa.zoom.is_empty() {
                if let audit::Divergence::Epoch { epoch, .. } = &divergence {
                    println!(
                        "hint: re-run both sides with VSCC_AUDIT_ZOOM={epoch} to capture the \
                         raw decisions of that epoch, then diff again"
                    );
                }
            }
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("cannot compare: {e}");
            std::process::exit(2);
        }
    }
}
