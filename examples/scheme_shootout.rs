//! Scheme shootout: compare all five inter-device communication schemes
//! on a ping-pong, the core experiment behind Fig. 6b.
//!
//! ```sh
//! cargo run --release --example scheme_shootout [message_bytes]
//! ```

use vscc::CommScheme;
use vscc_apps::pingpong;

fn main() {
    let size: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(32 * 1024);
    let reps = 3;

    println!("inter-device ping-pong, {size} B messages, {reps} round trips\n");
    println!("{:<40} {:>12} {:>14}", "scheme", "MB/s", "round trip us");
    let mut results = Vec::new();
    for scheme in CommScheme::ALL {
        let p = pingpong::interdevice(scheme, size, reps);
        let rt_us = p.cycles as f64 / reps as f64 / 533.0;
        println!("{:<40} {:>12.2} {:>14.1}", scheme.name(), p.mbps, rt_us);
        results.push((scheme, p.mbps));
    }

    let onchip = pingpong::onchip(true, size.max(64 * 1024), reps).mbps;
    let best = results
        .iter()
        .filter(|(s, _)| *s != CommScheme::RemotePutHwAck) // unstable beyond 2 devices
        .map(|(_, m)| *m)
        .fold(0.0f64, f64::max);
    println!("\non-chip (iRCCE) reference: {onchip:.1} MB/s");
    println!(
        "best stable scheme recovers {:.1}% of on-chip throughput (paper: 24%)",
        best / onchip * 100.0
    );
}
