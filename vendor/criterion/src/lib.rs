//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no registry access, so the real criterion
//! cannot be fetched. This crate provides the minimal surface the
//! `engine_micro` bench target uses — `Criterion::default()`,
//! `sample_size`, `bench_function`, `Bencher::iter`, `criterion_group!`,
//! `criterion_main!` — timing each sample with `std::time::Instant` and
//! printing mean/min per-iteration wall time. Wall-clock here measures the
//! *host* performance of the simulator binary; the simulation itself
//! remains purely virtual-clock.

use std::hint::black_box;
use std::time::Instant;

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: Vec::with_capacity(self.sample_size) };
        // One untimed warmup sample, then the configured number of
        // measured samples.
        f(&mut b);
        b.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let mean = b.samples.iter().sum::<f64>() / b.samples.len().max(1) as f64;
        let min = b.samples.iter().copied().fold(f64::INFINITY, f64::min);
        println!("{id:<44} mean {:>12} min {:>12}", fmt_ns(mean), fmt_ns(min));
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

pub struct Bencher {
    samples: Vec<f64>,
}

impl Bencher {
    /// Run the routine once per sample and record its wall time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed().as_nanos() as f64);
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_records() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u32;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        // 1 warmup + 3 samples.
        assert_eq!(runs, 4);
    }
}
