//! Offline stand-in for the `proptest` crate.
//!
//! The container this workspace builds in has no registry access, so the
//! real proptest cannot be fetched. This crate reimplements the small API
//! surface the workspace uses — `proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, `prop_oneof!`, `Strategy`, `Just`, `any`,
//! `prop::collection::vec`, range and tuple strategies, `ProptestConfig` —
//! as a deterministic random-input harness. Inputs are derived from a
//! fixed splitmix64 stream per (test, case), so failures reproduce exactly
//! across runs and machines. There is no shrinking: a failing case reports
//! its case index and message.

pub mod test_runner {
    use std::fmt;

    /// Subset of proptest's config: only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property check (from `prop_assert!` and friends).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError { message: message.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Deterministic splitmix64 stream; seeded per (test, case).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a over the test name, mixed with the case index, so each
            // test walks its own reproducible stream.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0);
            let mut m = (self.next_u64() as u128) * (n as u128);
            if (m as u64) < n {
                let t = n.wrapping_neg() % n;
                while (m as u64) < t {
                    m = (self.next_u64() as u128) * (n as u128);
                }
            }
            (m >> 64) as u64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of test inputs. Unlike real proptest there is no value
    /// tree / shrinking; `generate` yields the final value directly.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64) - (lo as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($(($($s:ident $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<V> {
        choices: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        pub fn new(choices: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
            Union { choices }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.choices.len() as u64) as usize;
            self.choices[i].generate(rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Mirror of proptest's `prop` facade module (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let mut choices: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = ::std::vec::Vec::new();
        $(choices.push(::std::boxed::Box::new($strat));)+
        $crate::strategy::Union::new(choices)
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with_config $config; $($rest)* }
    };
    (@with_config $config:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest case {case} of {}: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @with_config $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn rng_is_deterministic_per_test_and_case() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(TestRng::for_case("t", 3).next_u64(), c.next_u64());
    }

    #[test]
    fn range_strategies_respect_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// The harness itself: generated vecs respect the size range.
        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn oneof_picks_only_choices(x in prop_oneof![Just(1u32), Just(7u32)]) {
            prop_assert!(x == 1 || x == 7, "unexpected {}", x);
        }
    }
}
