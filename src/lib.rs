//! vscc-repro — umbrella crate of the vSCC reproduction.
//!
//! Re-exports the layered public API:
//!
//! * [`des`] — deterministic discrete-event simulation engine;
//! * [`scc`] — the SCC device model;
//! * [`pcie`] — the PCIe tunnel and host fabric;
//! * [`rcce`] — the RCCE / iRCCE communication libraries;
//! * [`vscc`] — the paper's contribution: host-assisted inter-device
//!   communication (communication task, software cache, write-combining
//!   buffer, virtual DMA controller);
//! * [`apps`] — Ping-Pong, NPB BT, traffic analysis, stencil demo.
//!
//! See the `examples/` directory for runnable entry points and
//! `crates/bench/benches/` for the figure/table regeneration harnesses.

pub use des;
pub use pcie;
pub use rcce;
pub use scc;
pub use vscc;
pub use vscc_apps as apps;
