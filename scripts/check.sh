#!/usr/bin/env bash
# Pre-merge gate: formatting, lints, and the full test suite.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check
# Belt and braces: the bench targets are harness=false binaries and easy
# to leave out of a fmt pass when editing them standalone.
rustfmt --edition 2021 --check crates/bench/benches/*.rs

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo bench --no-run (figure/table harnesses must keep building) =="
cargo bench --workspace --no-run

echo "== cargo test =="
cargo test --workspace -q

echo "== chaos smoke (fixed-seed fault plan, recovery end to end) =="
cargo test -q --test chaos smoke_fixed_seed

echo "== heal-and-repromote smoke (storm-then-quiet must end re-promoted) =="
# A seeded ack-loss storm demotes the pair; once the plan goes quiet the
# canary probes must earn it back: promotions > 0, zero pairs still
# demoted at exit, and the audited rerun byte-identical (DESIGN.md §5h).
cargo test -q --test chaos demoted_pair_heals_after_the_storm_ends

echo "== golden exports (fault-free runs byte-identical to committed goldens) =="
# The health plane must be inert without an active fault plan: any drift
# in these fixed-seed trace/metrics/timeseries/audit exports means the
# recovery layer perturbed a clean run.
cargo test -q --test golden_exports

echo "== trace lint (structural invariants of a sampled fig6b-style export) =="
# No argument: the example generates a small sampled inter-device export
# (counter tracks included) in-process and lints it; exit 1 on violation.
cargo run -q --example trace_lint

echo "== cadence-sweep smoke (two cadences, same run, same final snapshot) =="
cargo test -q --test observability cadence_sweep

echo "== audit smoke (two audited fig6b runs must export identical digests) =="
# VSCC_AUDIT makes the fig6b target re-run its vDMA 8 KiB point under the
# hash-chained scheduler audit stream and export the per-epoch digests.
# Two back-to-back runs (separate processes) must be byte-identical:
# audit_diff exits 0 on identity, 1 on divergence (killing the script).
AUDIT_TMP="$(mktemp -d)"
trap 'rm -rf "$AUDIT_TMP"' EXIT
VSCC_AUDIT="$AUDIT_TMP/a.json" cargo bench -p vscc-bench --bench fig6b_interdevice >/dev/null
VSCC_AUDIT="$AUDIT_TMP/b.json" cargo bench -p vscc-bench --bench fig6b_interdevice >/dev/null
cmp -s "$AUDIT_TMP/a.json" "$AUDIT_TMP/b.json" || { echo "audit exports not byte-identical"; exit 1; }
cargo run -q --example audit_diff -- "$AUDIT_TMP/a.json" "$AUDIT_TMP/b.json"

echo "== shard smoke (VSCC_SHARDS=5 fig6b audit byte-identical to serial) =="
# The multi-group engine's correctness contract (DESIGN.md §5i): the
# latency-stamped MMIO boundary partitions the fig6b system into one
# execution group per device plus the host, and the same run under
# VSCC_SHARDS=5 (one worker per group) must export the same audit
# stream as the serial engine, byte for byte. The committed-golden
# version of this gate (all four exports, shards 1/2/5) already ran
# inside `cargo test --test golden_exports`; this cross-checks the
# env-var path end to end.
VSCC_SHARDS=5 VSCC_AUDIT="$AUDIT_TMP/s.json" cargo bench -p vscc-bench --bench fig6b_interdevice >/dev/null
cmp -s "$AUDIT_TMP/a.json" "$AUDIT_TMP/s.json" || { echo "VSCC_SHARDS=5 audit diverged from serial"; exit 1; }

if [ "${VSCC_PERF_SKIP:-}" = "1" ]; then
    echo "== perf smoke: skipped (VSCC_PERF_SKIP=1) =="
else
    echo "== perf smoke (engine events/sec + allocs/msg vs committed BENCH_engine.json) =="
    # Quick-sample harness run; writes target/BENCH_engine.json and fails
    # if any scenario's events/sec drops >30% below the committed
    # baseline, or a datapath scenario's allocations-per-message rises
    # >20% above it (the alloc counter is deterministic, so that gate is
    # noise-free), or the audited data-path twin loses >10% events/sec
    # against its audit-off twin (the audit-overhead budget). The same
    # invocation gates the sharded engine's scaling: on hosts with >= 4
    # cores the 4-device sharded ring must hit >= 1.8x the serial
    # events/sec (skipped with a diagnostic on smaller machines).
    # Wall-clock only — the virtual clock never sees it.
    # Set VSCC_PERF_SKIP=1 on noisy/shared machines.
    VSCC_PERF_FAST=1 VSCC_PERF_GATE=1 cargo bench -p vscc-bench --bench engine_micro
fi

echo "All checks passed."
